#include "prof/profile.hpp"

#include <sstream>

#include "common/env.hpp"
#include "common/table.hpp"

namespace amdmb::prof {

std::size_t Profile::TouchedCacheSets() const {
  std::size_t touched = 0;
  for (const CacheSetStats& set : per_cache_set) {
    if (set.hits + set.misses > 0) ++touched;
  }
  return touched;
}

std::string Profile::Render() const {
  std::ostringstream os;
  os << "profile: " << point;
  if (!arch.empty()) os << " on " << arch;
  if (!mode.empty()) os << " (" << mode;
  if (!type.empty()) os << " " << type;
  if (!mode.empty()) os << ")";
  if (attempt > 1) os << " attempt " << attempt;
  os << "\n" << counters.Render();

  TextTable clause_table(
      {"clause type", "events", "queue (cyc)", "service (cyc)",
       "mean queue", "mean service"});
  for (std::size_t i = 0; i < kClauseTypeCount; ++i) {
    const ClauseAgg& agg = clauses[i];
    if (agg.events == 0) continue;
    const auto events = static_cast<double>(agg.events);
    clause_table.AddRow(
        {std::string(isa::ToString(static_cast<isa::ClauseType>(i))),
         std::to_string(agg.events), std::to_string(agg.queue_cycles),
         std::to_string(agg.service_cycles),
         FormatDouble(static_cast<double>(agg.queue_cycles) / events, 1),
         FormatDouble(static_cast<double>(agg.service_cycles) / events, 1)});
  }
  os << "queueing vs service per clause type:\n" << clause_table.Render();

  if (!per_cache_set.empty()) {
    os << "texture-cache sets touched: " << TouchedCacheSets() << " of "
       << per_cache_set.size() << "\n";
  }
  if (dropped_events > 0) {
    os << "trace events dropped past the capacity cap: " << dropped_events
       << " (raise AMDMB_TRACE_CAP)\n";
  }
  os << "attribution: " << sim::ToString(attribution.bottleneck)
     << "  (alu=" << FormatDouble(attribution.alu_score, 3)
     << " fetch=" << FormatDouble(attribution.fetch_score, 3)
     << " memory=" << FormatDouble(attribution.memory_score, 3) << ")\n";
  return os.str();
}

bool ProfilingEnabled() { return env::Get().prof; }

std::string TraceDirectory() {
  return env::Get().trace_dir.value_or(std::string());
}

}  // namespace amdmb::prof
