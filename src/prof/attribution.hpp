// Counter-based bottleneck attribution.
//
// The simulator's heuristic classifier (Gpu::Execute, paper Sec. II-A)
// decides ALU / FETCH / MEMORY from its internal busy aggregates. The
// attributor makes the same decision from the *sampled counters* — the
// independently-accumulated instrumentation stream — which upgrades the
// classification from a heuristic to an evidence-backed statement: when
// the two disagree, a specific counter names the discrepancy. The suite
// cross-checks both on every bench figure (see tests/test_prof.cpp and
// EXPERIMENTS.md).
#pragma once

#include "prof/profile.hpp"

namespace amdmb::prof {

/// Attributes the launch bottleneck from a sampled CounterSet. The
/// scoring mirrors the heuristic's definitions exactly:
///   alu    = busiest SIMD's ALU busy share of the launch
///   fetch  = max(busiest SIMD's tex-unit share,
///                fetch-wait share of all wavefront slots,
///                texture-line fill share of the controller)
///   memory = non-fill controller busy share
/// with the same >=-ordered tie-break (ALU, then FETCH, then MEMORY).
Attribution Attribute(const CounterSet& counters);

}  // namespace amdmb::prof
