#include "prof/profile_json.hpp"

#include <cstdint>
#include <sstream>

#include "common/status.hpp"
#include "report/json.hpp"

namespace amdmb::prof {

namespace {

/// Counter values are exact integers; JsonNumber would round-trip them
/// through double. 64-bit counters stay within 2^53 for any simulated
/// launch this suite runs, but emit them as integer literals anyway so
/// the documents read naturally.
std::string U64(std::uint64_t v) { return std::to_string(v); }

std::uint64_t AsU64(const report::JsonValue& v, const char* what) {
  const double d = v.AsNumber();
  Require(d >= 0, std::string(what) + ": negative counter value");
  return static_cast<std::uint64_t>(d);
}

sim::Bottleneck BottleneckFromString(std::string_view name) {
  if (name == "ALU") return sim::Bottleneck::kAlu;
  if (name == "FETCH") return sim::Bottleneck::kFetch;
  if (name == "MEMORY") return sim::Bottleneck::kMemory;
  Require(false, "profile JSON: unknown bottleneck '" + std::string(name) +
                     "'");
  return sim::Bottleneck::kAlu;
}

isa::ClauseType ClauseTypeFromString(std::string_view name) {
  for (std::size_t i = 0; i < kClauseTypeCount; ++i) {
    const auto type = static_cast<isa::ClauseType>(i);
    if (isa::ToString(type) == name) return type;
  }
  Require(false,
          "profile JSON: unknown clause type '" + std::string(name) + "'");
  return isa::ClauseType::kAlu;
}

}  // namespace

std::string CounterSetJson(const CounterSet& counters) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto id = static_cast<CounterId>(i);
    os << (i ? ", " : "") << "\"" << ToString(id)
       << "\": " << U64(counters.Get(id));
  }
  os << "}";
  return os.str();
}

CounterSet CounterSetFromJson(const report::JsonValue& value) {
  CounterSet counters;
  for (const auto& [key, v] : value.AsObject()) {
    if (const auto id = CounterIdFromString(key)) {
      counters.Set(*id, AsU64(v, "counters"));
    }
  }
  return counters;
}

std::string ProfileJson(const Profile& profile) {
  using report::JsonEscape;
  using report::JsonNumber;
  std::ostringstream os;
  os << "{\n";
  os << "  \"kernel\": \"" << JsonEscape(profile.kernel) << "\",\n";
  os << "  \"point\": \"" << JsonEscape(profile.point) << "\",\n";
  os << "  \"arch\": \"" << JsonEscape(profile.arch) << "\",\n";
  os << "  \"mode\": \"" << JsonEscape(profile.mode) << "\",\n";
  os << "  \"type\": \"" << JsonEscape(profile.type) << "\",\n";
  os << "  \"attempt\": " << profile.attempt << ",\n";
  os << "  \"counters\": " << CounterSetJson(profile.counters) << ",\n";
  os << "  \"clauses\": [";
  bool first = true;
  for (std::size_t i = 0; i < kClauseTypeCount; ++i) {
    const ClauseAgg& agg = profile.clauses[i];
    if (agg.events == 0) continue;
    os << (first ? "" : ",") << "\n    {\"type\": \""
       << isa::ToString(static_cast<isa::ClauseType>(i))
       << "\", \"events\": " << U64(agg.events)
       << ", \"queue_cycles\": " << U64(agg.queue_cycles)
       << ", \"service_cycles\": " << U64(agg.service_cycles) << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"per_simd\": [";
  for (std::size_t i = 0; i < profile.per_simd.size(); ++i) {
    os << (i ? ", " : "") << "{\"alu_cycles\": "
       << U64(profile.per_simd[i].alu_cycles)
       << ", \"tex_cycles\": " << U64(profile.per_simd[i].tex_cycles)
       << "}";
  }
  os << "],\n";
  os << "  \"row_switches_per_bank\": [";
  for (std::size_t i = 0; i < profile.row_switches_per_bank.size(); ++i) {
    os << (i ? ", " : "") << U64(profile.row_switches_per_bank[i]);
  }
  os << "],\n";
  // Only touched sets, indexed: RV770 models 320 sets and most launches
  // touch a handful, so a dense dump would be noise.
  os << "  \"cache_sets\": {\"total\": " << profile.per_cache_set.size()
     << ", \"touched\": [";
  first = true;
  for (std::size_t set = 0; set < profile.per_cache_set.size(); ++set) {
    const CacheSetStats& stats = profile.per_cache_set[set];
    if (stats.hits + stats.misses == 0) continue;
    os << (first ? "" : ",") << "\n    {\"set\": " << set
       << ", \"hits\": " << U64(stats.hits)
       << ", \"misses\": " << U64(stats.misses) << "}";
    first = false;
  }
  os << (first ? "]}" : "\n  ]}") << ",\n";
  os << "  \"dropped_events\": " << U64(profile.dropped_events) << ",\n";
  os << "  \"attribution\": {\"bottleneck\": \""
     << sim::ToString(profile.attribution.bottleneck)
     << "\", \"alu_score\": " << JsonNumber(profile.attribution.alu_score)
     << ", \"fetch_score\": "
     << JsonNumber(profile.attribution.fetch_score)
     << ", \"memory_score\": "
     << JsonNumber(profile.attribution.memory_score) << "}\n";
  os << "}\n";
  return os.str();
}

Profile ProfileFromJson(const report::JsonValue& value) {
  Profile profile;
  profile.kernel = value.StringOr("kernel", "");
  profile.point = value.StringOr("point", "");
  profile.arch = value.StringOr("arch", "");
  profile.mode = value.StringOr("mode", "");
  profile.type = value.StringOr("type", "");
  profile.attempt =
      static_cast<unsigned>(value.NumberOr("attempt", 1.0));
  if (const auto* counters = value.Find("counters")) {
    profile.counters = CounterSetFromJson(*counters);
  }
  if (const auto* clauses = value.Find("clauses")) {
    for (const report::JsonValue& entry : clauses->AsArray()) {
      const isa::ClauseType type =
          ClauseTypeFromString(entry.StringOr("type", ""));
      ClauseAgg& agg =
          profile.clauses[static_cast<std::size_t>(type)];
      agg.events = static_cast<std::uint64_t>(entry.NumberOr("events", 0));
      agg.queue_cycles =
          static_cast<std::uint64_t>(entry.NumberOr("queue_cycles", 0));
      agg.service_cycles =
          static_cast<std::uint64_t>(entry.NumberOr("service_cycles", 0));
    }
  }
  if (const auto* per_simd = value.Find("per_simd")) {
    for (const report::JsonValue& entry : per_simd->AsArray()) {
      profile.per_simd.push_back(SimdBusy{
          static_cast<std::uint64_t>(entry.NumberOr("alu_cycles", 0)),
          static_cast<std::uint64_t>(entry.NumberOr("tex_cycles", 0))});
    }
  }
  if (const auto* banks = value.Find("row_switches_per_bank")) {
    for (const report::JsonValue& entry : banks->AsArray()) {
      profile.row_switches_per_bank.push_back(
          AsU64(entry, "row_switches_per_bank"));
    }
  }
  if (const auto* cache = value.Find("cache_sets")) {
    profile.per_cache_set.resize(
        static_cast<std::size_t>(cache->NumberOr("total", 0)));
    if (const auto* touched = cache->Find("touched")) {
      for (const report::JsonValue& entry : touched->AsArray()) {
        const auto set =
            static_cast<std::size_t>(entry.NumberOr("set", 0));
        if (profile.per_cache_set.size() <= set) {
          profile.per_cache_set.resize(set + 1);
        }
        profile.per_cache_set[set] = CacheSetStats{
            static_cast<std::uint64_t>(entry.NumberOr("hits", 0)),
            static_cast<std::uint64_t>(entry.NumberOr("misses", 0))};
      }
    }
  }
  profile.dropped_events =
      static_cast<std::uint64_t>(value.NumberOr("dropped_events", 0));
  if (const auto* attribution = value.Find("attribution")) {
    profile.attribution.bottleneck =
        BottleneckFromString(attribution->StringOr("bottleneck", "ALU"));
    profile.attribution.alu_score = attribution->NumberOr("alu_score", 0);
    profile.attribution.fetch_score =
        attribution->NumberOr("fetch_score", 0);
    profile.attribution.memory_score =
        attribution->NumberOr("memory_score", 0);
  }
  return profile;
}

Profile ParseProfileJson(const std::string& text) {
  return ProfileFromJson(report::JsonValue::Parse(text));
}

}  // namespace amdmb::prof
