// The instrumentation hook surface: one Collector rides along one
// Gpu::Execute launch and accumulates the Profile.
//
// Attachment is by nullable pointer — sim/gpu wires the collector into
// the per-launch cache / memory-controller / SIMD-engine objects, each
// of which guards its hook calls with a single null check. With no
// collector attached (AMDMB_PROF unset) the hooks compile down to an
// untaken branch, which is how profiling stays free when disabled and
// keeps bench stdout byte-identical.
//
// Determinism: every hook argument derives from simulated state (event
// clock, counts, addresses), never from wall time, so a Collector's
// final Profile is bit-identical across runs and AMDMB_THREADS widths.
// The retry layer builds a fresh Collector per attempt, so a retried
// point never double-counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "prof/attribution.hpp"
#include "prof/profile.hpp"

namespace amdmb::prof {

/// Which memory-controller path served a batch (mirrors the four public
/// entry points of mem::MemoryController).
enum class DramOp : unsigned { kFill, kRead, kWrite, kStream };

class Collector {
 public:
  /// `event_capacity` bounds the Chrome-trace event list (and the
  /// occupancy timeline) exactly like sim::Trace bounds its events;
  /// drops are counted, never silent.
  explicit Collector(std::size_t event_capacity)
      : capacity_(event_capacity) {}

  // ---- sim/gpu hooks ----------------------------------------------------
  /// Every executed clause (ALU clauses per interleave chunk), with its
  /// queueing/service timeline — feeds the Chrome trace and the
  /// per-clause-type aggregates.
  void OnClause(const sim::TraceEvent& event) {
    ClauseAgg& agg =
        profile_.clauses[static_cast<std::size_t>(event.type)];
    ++agg.events;
    agg.queue_cycles += event.start - event.issue;
    agg.service_cycles += event.complete - event.start;
    if (profile_.events.size() < capacity_) {
      profile_.events.push_back(event);
    } else {
      ++profile_.dropped_events;
    }
  }

  void OnClauseSwitch() {
    profile_.counters.Add(CounterId::kClauseSwitches, 1);
  }

  /// VLIW slot issue of one ALU chunk (`used` of `total` slots across
  /// `bundles` bundles).
  void OnAluSlots(std::uint64_t bundles, std::uint64_t used,
                  std::uint64_t total) {
    profile_.counters.Add(CounterId::kAluBundles, bundles);
    profile_.counters.Add(CounterId::kAluSlotsUsed, used);
    profile_.counters.Add(CounterId::kAluSlotsTotal, total);
  }

  /// Wavefront time spent inside a fetch clause (TEX or global read).
  void OnFetchWait(Cycles wait) {
    profile_.counters.Add(CounterId::kFetchWaitCycles, wait);
  }

  /// Resident-wavefront count of `simd` changed at event time `t`.
  void OnOccupancy(Cycles t, unsigned simd, unsigned resident) {
    if (profile_.occupancy.size() < capacity_) {
      profile_.occupancy.push_back(OccupancySample{
          t, static_cast<std::uint16_t>(simd), resident});
    }
  }

  // ---- sim/simd_engine hook ---------------------------------------------
  void OnAluChunk(unsigned simd, Cycles busy) {
    profile_.counters.Add(CounterId::kAluClauses, 1);
    GrowSimd(simd).alu_cycles += busy;
  }

  // ---- mem/texture_unit hook --------------------------------------------
  void OnTexClause(unsigned simd, Cycles service, unsigned miss_instrs) {
    profile_.counters.Add(CounterId::kTexClauses, 1);
    profile_.counters.Add(CounterId::kTexMissStallInstrs, miss_instrs);
    GrowSimd(simd).tex_cycles += service;
  }

  // ---- mem/cache hook ---------------------------------------------------
  void OnCacheProbe(unsigned set, bool hit) {
    if (profile_.per_cache_set.size() <= set) {
      profile_.per_cache_set.resize(set + 1);
    }
    CacheSetStats& stats = profile_.per_cache_set[set];
    if (hit) {
      ++stats.hits;
      profile_.counters.Add(CounterId::kTexCacheHits, 1);
    } else {
      ++stats.misses;
      profile_.counters.Add(CounterId::kTexCacheMisses, 1);
    }
  }

  // ---- mem/dram hooks ---------------------------------------------------
  void OnDramBatch(DramOp op, Cycles queue, Cycles transfer, Cycles busy,
                   Bytes bytes) {
    CounterSet& c = profile_.counters;
    c.Add(CounterId::kDramBatches, 1);
    c.Add(CounterId::kDramQueueCycles, queue);
    c.Add(CounterId::kDramTransferCycles, transfer);
    c.Add(CounterId::kDramBusyCycles, busy);
    if (op == DramOp::kFill) {
      c.Add(CounterId::kDramFillBusyCycles, busy);
    }
    if (op == DramOp::kRead || op == DramOp::kFill) {
      c.Add(CounterId::kDramReadBytes, bytes);
    } else {
      c.Add(CounterId::kDramWriteBytes, bytes);
    }
  }

  void OnRowSwitch(unsigned bank) {
    profile_.counters.Add(CounterId::kDramRowSwitches, 1);
    if (profile_.row_switches_per_bank.size() <= bank) {
      profile_.row_switches_per_bank.resize(bank + 1, 0);
    }
    ++profile_.row_switches_per_bank[bank];
  }

  // ---- finalisation (sim/gpu, end of Execute) ---------------------------
  /// Seals the launch-shape counters, folds the per-SIMD busy maxima,
  /// and runs the counter-based attribution.
  void Finish(Cycles t_end, std::uint64_t wavefronts,
              unsigned resident_wavefronts, unsigned simd_engines) {
    CounterSet& c = profile_.counters;
    c.Set(CounterId::kCycles, t_end);
    c.Set(CounterId::kWavefronts, wavefronts);
    c.Set(CounterId::kResidentWavefronts, resident_wavefronts);
    c.Set(CounterId::kSimdEngines, simd_engines);
    std::uint64_t alu_max = 0;
    std::uint64_t tex_max = 0;
    for (const SimdBusy& simd : profile_.per_simd) {
      alu_max = std::max(alu_max, simd.alu_cycles);
      tex_max = std::max(tex_max, simd.tex_cycles);
    }
    c.Set(CounterId::kAluBusyCyclesMax, alu_max);
    c.Set(CounterId::kTexBusyCyclesMax, tex_max);
    profile_.attribution = Attribute(c);
  }

  const Profile& Current() const { return profile_; }

  /// Moves the finished profile out; the collector is spent afterwards.
  Profile Take() { return std::move(profile_); }

 private:
  SimdBusy& GrowSimd(unsigned simd) {
    if (profile_.per_simd.size() <= simd) {
      profile_.per_simd.resize(simd + 1);
    }
    return profile_.per_simd[simd];
  }

  std::size_t capacity_;
  Profile profile_;
};

}  // namespace amdmb::prof
