#include "sim/gpu.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "arch/occupancy.hpp"
#include "common/env.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "prof/collector.hpp"
#include "sim/simd_engine.hpp"
#include "sim/wavefront.hpp"

namespace amdmb::sim {

std::string_view ToString(Bottleneck b) {
  switch (b) {
    case Bottleneck::kAlu: return "ALU";
    case Bottleneck::kFetch: return "FETCH";
    case Bottleneck::kMemory: return "MEMORY";
  }
  throw SimError("ToString(Bottleneck): unknown value");
}

WatchdogTimeout::WatchdogTimeout(Cycles budget, Cycles reached)
    : TransientError("watchdog: launch exceeded its cycle budget of " +
                     std::to_string(budget) + " (event clock at " +
                     std::to_string(reached) + ")"),
      budget_(budget),
      reached_(reached) {}

Cycles DefaultWatchdogCycles() {
  return Cycles{env::Get().watchdog_cycles};
}

Gpu::Gpu(GpuArch arch)
    : arch_(std::move(arch)),
      tex_cache_config_(mem::CacheConfig{
          .size_bytes = arch_.TotalTexCacheBytes(),
          .line_bytes = arch_.l1.line_bytes,
          .associativity = arch_.l1.associativity,
          .two_d_index = arch_.l1.two_d_index,
      }) {}

namespace {

struct Event {
  Cycles t = 0;
  unsigned simd = 0;
  std::uint32_t wave = 0;
  unsigned clause = 0;
  /// VLIW bundles of this ALU clause already executed (chunked
  /// interleaving; zero for non-ALU clauses).
  unsigned bundles_done = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    if (a.simd != b.simd) return a.simd > b.simd;
    return a.wave > b.wave;
  }
};

void ValidateLaunch(const GpuArch& arch, const isa::Program& program,
                    const LaunchConfig& config) {
  if (config.mode == ShaderMode::kCompute) {
    Require(arch.supports_compute,
            arch.name + " does not support compute shader mode");
    Require(program.sig.write_path == WritePath::kGlobal,
            "compute shader mode cannot write color buffers; outputs must "
            "use the global write path (paper Sec. IV-C)");
  }
  Require(config.repetitions > 0, "launch needs at least one repetition");
}

}  // namespace

KernelStats Gpu::Execute(const isa::Program& program,
                         const LaunchConfig& config, Trace* trace,
                         prof::Collector* collector) const {
  ValidateLaunch(arch_, program, config);

  const std::vector<WaveRect> waves =
      BuildDispatch(config.domain, config.mode, config.block,
                    arch_.wavefront_size);
  const auto wave_count = static_cast<std::uint32_t>(waves.size());
  const ResourceLayouts layouts(arch_, program.sig, config.domain);
  const unsigned occupancy = WavefrontsPerSimd(arch_, program.gpr_count);
  const unsigned simd_count = arch_.simd_engines;

  mem::TextureCache cache(tex_cache_config_);
  mem::MemoryController controller(arch_);
  std::vector<SimdEngine> simds;
  simds.reserve(simd_count);
  for (unsigned s = 0; s < simd_count; ++s) {
    simds.emplace_back(arch_, cache, controller);
  }
  if (collector != nullptr) {
    cache.SetCollector(collector);
    controller.SetCollector(collector);
    for (unsigned s = 0; s < simd_count; ++s) {
      simds[s].SetCollector(collector, s);
    }
  }

  // Wavefront w runs on SIMD w % simd_count; each SIMD admits its waves
  // in order, keeping at most `occupancy` resident. Every wavefront owns
  // exactly one in-flight event, so the queue never outgrows the
  // resident set — reserve its backing vector up front.
  std::vector<std::uint32_t> next_batch(simd_count, occupancy);
  // Per-SIMD resident-wavefront counts for the occupancy timeline;
  // maintained only while a collector observes the launch.
  std::vector<unsigned> resident(collector != nullptr ? simd_count : 0, 0);
  std::vector<Event> event_storage;
  event_storage.reserve(std::min<std::uint64_t>(
      wave_count, static_cast<std::uint64_t>(simd_count) * occupancy + 1));
  std::priority_queue<Event, std::vector<Event>, EventAfter> events(
      EventAfter{}, std::move(event_storage));
  for (unsigned s = 0; s < simd_count; ++s) {
    for (unsigned k = 0; k < occupancy; ++k) {
      const std::uint64_t w =
          static_cast<std::uint64_t>(k) * simd_count + s;
      if (w < wave_count) {
        // Tiny stagger keeps the initial interleave deterministic without
        // every wavefront's first clause colliding at cycle 0.
        events.push(Event{k, s, static_cast<std::uint32_t>(w), 0});
        if (collector != nullptr) ++resident[s];
      }
    }
  }
  if (collector != nullptr) {
    for (unsigned s = 0; s < simd_count; ++s) {
      collector->OnOccupancy(0, s, resident[s]);
    }
  }

  // Scratch for the texture-line footprints of one TEX clause, sized
  // once for the widest clause of the program; clear() inside the loop
  // keeps each inner vector's capacity, so the steady state allocates
  // nothing per clause.
  std::size_t max_clause_fetches = 0;
  for (const isa::Clause& c : program.clauses) {
    if (c.type == isa::ClauseType::kTex) {
      max_clause_fetches = std::max(max_clause_fetches, c.fetches.size());
    }
  }
  std::vector<std::vector<mem::LineId>> lines_scratch(max_clause_fetches);
  Cycles t_end = 0;
  Cycles fetch_wait = 0;  // Wavefront time spent inside fetch clauses.

  while (!events.empty()) {
    const Event e = events.top();
    events.pop();
    if (config.watchdog_cycles > 0 && e.t > config.watchdog_cycles) {
      throw WatchdogTimeout(config.watchdog_cycles, e.t);
    }
    Check(e.clause < program.clauses.size(), "Gpu::Execute: bad clause id");
    const isa::Clause& clause = program.clauses[e.clause];
    const WaveRect& rect = waves[e.wave];
    SimdEngine& simd = simds[e.simd];
    Cycles done = e.t;
    Cycles served_at = e.t;

    switch (clause.type) {
      case isa::ClauseType::kAlu: {
        const auto total = static_cast<unsigned>(clause.bundles.size());
        const unsigned chunk =
            std::min(kAluInterleaveBundles, total - e.bundles_done);
        const SimdEngine::AluRun run = simd.RunAluClause(e.t, chunk, occupancy);
        served_at = run.start;
        done = run.end;
        if (trace != nullptr) {
          trace->Record(TraceEvent{e.t, served_at, done, e.wave,
                                   static_cast<std::uint16_t>(e.simd),
                                   static_cast<std::uint16_t>(e.clause),
                                   clause.type});
        }
        if (collector != nullptr) {
          collector->OnClause(TraceEvent{e.t, served_at, done, e.wave,
                                         static_cast<std::uint16_t>(e.simd),
                                         static_cast<std::uint16_t>(e.clause),
                                         clause.type});
          std::uint64_t used = 0;
          for (unsigned b = 0; b < chunk; ++b) {
            used += clause.bundles[e.bundles_done + b].SlotCount();
          }
          collector->OnAluSlots(
              chunk, used,
              static_cast<std::uint64_t>(chunk) * arch_.vliw_width);
        }
        if (e.bundles_done + chunk < total) {
          // Yield the pipe to other resident wavefronts between chunks.
          events.push(Event{done, e.simd, e.wave, e.clause,
                            e.bundles_done + chunk});
          continue;
        }
        break;
      }
      case isa::ClauseType::kTex: {
        for (std::size_t f = 0; f < clause.fetches.size(); ++f) {
          lines_scratch[f].clear();
          layouts.LinesFor(clause.fetches[f].resource, rect,
                           lines_scratch[f]);
        }
        const mem::TexClauseTiming timing = simd.TextureUnits().ServeClause(
            e.t, program.sig.type, rect.ThreadCount(),
            std::span(lines_scratch.data(), clause.fetches.size()));
        served_at = timing.start;
        done = timing.complete;
        fetch_wait += done - e.t;
        if (collector != nullptr) collector->OnFetchWait(done - e.t);
        break;
      }
      case isa::ClauseType::kMemRead: {
        Cycles last_end = e.t;
        bool first_batch = true;
        for (const isa::FetchInst& f : clause.fetches) {
          const mem::BatchResult batch = controller.GlobalRead(
              e.t, layouts.GlobalAddress(f.resource, /*is_output=*/false, rect),
              layouts.BytesFor(rect));
          if (first_batch) {
            served_at = batch.start;
            first_batch = false;
          }
          last_end = std::max(last_end, batch.end);
        }
        done = last_end + arch_.dram.read_latency;
        fetch_wait += done - e.t;
        if (collector != nullptr) collector->OnFetchWait(done - e.t);
        break;
      }
      case isa::ClauseType::kExport:
      case isa::ClauseType::kMemWrite: {
        Cycles last_end = e.t;
        bool first_batch = true;
        for (const isa::WriteInst& w : clause.writes) {
          const std::uint64_t addr =
              layouts.GlobalAddress(w.resource, /*is_output=*/true, rect);
          const mem::BatchResult batch =
              clause.type == isa::ClauseType::kExport
                  ? controller.StreamStore(e.t, addr, layouts.BytesFor(rect))
                  : controller.GlobalWrite(e.t, addr, layouts.BytesFor(rect));
          if (first_batch) {
            served_at = batch.start;
            first_batch = false;
          }
          last_end = std::max(last_end, batch.end);
        }
        done = last_end;
        break;
      }
    }

    if (clause.type != isa::ClauseType::kAlu) {
      if (trace != nullptr) {
        trace->Record(TraceEvent{e.t, served_at, done, e.wave,
                                 static_cast<std::uint16_t>(e.simd),
                                 static_cast<std::uint16_t>(e.clause),
                                 clause.type});
      }
      if (collector != nullptr) {
        collector->OnClause(TraceEvent{e.t, served_at, done, e.wave,
                                       static_cast<std::uint16_t>(e.simd),
                                       static_cast<std::uint16_t>(e.clause),
                                       clause.type});
      }
    }
    t_end = std::max(t_end, done);
    if (e.clause + 1 < program.clauses.size()) {
      if (collector != nullptr) collector->OnClauseSwitch();
      events.push(Event{done + arch_.clause_switch_cycles, e.simd, e.wave,
                        e.clause + 1});
    } else {
      // Wavefront retired; admit this SIMD's next wavefront, if any.
      const std::uint64_t w =
          static_cast<std::uint64_t>(next_batch[e.simd]) * simd_count + e.simd;
      if (w < wave_count) {
        ++next_batch[e.simd];
        if (collector != nullptr) collector->OnClauseSwitch();
        events.push(Event{done + arch_.clause_switch_cycles, e.simd,
                          static_cast<std::uint32_t>(w), 0});
      } else if (collector != nullptr) {
        // Retired without replacement: this SIMD's resident count drops.
        --resident[e.simd];
        collector->OnOccupancy(done, e.simd, resident[e.simd]);
      }
    }
  }
  t_end = std::max(t_end, controller.FreeAt());
  Check(t_end > 0, "Gpu::Execute: empty execution");
  if (collector != nullptr) {
    collector->Finish(t_end, wave_count, occupancy, simd_count);
  }

  KernelStats stats;
  stats.cycles = t_end;
  stats.seconds = arch_.CyclesToSeconds(static_cast<double>(t_end)) *
                  config.repetitions;
  const auto total = static_cast<double>(t_end);
  for (const SimdEngine& s : simds) {
    stats.alu_utilization = std::max(
        stats.alu_utilization, static_cast<double>(s.AluBusyCycles()) / total);
    stats.fetch_utilization =
        std::max(stats.fetch_utilization,
                 static_cast<double>(s.TexBusyCycles()) / total);
  }
  const mem::DramStats& dram = controller.Stats();
  stats.memory_utilization = static_cast<double>(dram.busy_cycles) / total;
  stats.cache = cache.Stats();
  stats.dram = dram;
  stats.gpr_count = program.gpr_count;
  stats.resident_wavefronts = occupancy;
  stats.wavefront_count = wave_count;

  // Bottleneck classification (paper Sec. II-A). The fetch score covers
  // both the texture-unit pipeline and latency exposure (stalled
  // wavefront slots waiting on fetches); memory covers the controller
  // minus texture-line fills, which belong to the fetch path.
  const double slot_time =
      total * simd_count * std::max(1u, occupancy);
  const double stall_share = static_cast<double>(fetch_wait) / slot_time;
  const double fill_share = static_cast<double>(dram.fill_busy_cycles) / total;
  const double fetch_score =
      std::max({stats.fetch_utilization, stall_share, fill_share});
  const double mem_score =
      static_cast<double>(dram.busy_cycles - dram.fill_busy_cycles) / total;
  if (stats.alu_utilization >= fetch_score &&
      stats.alu_utilization >= mem_score) {
    stats.bottleneck = Bottleneck::kAlu;
  } else if (fetch_score >= mem_score) {
    stats.bottleneck = Bottleneck::kFetch;
  } else {
    stats.bottleneck = Bottleneck::kMemory;
  }
  return stats;
}

std::string KernelStats::Render() const {
  std::ostringstream os;
  os << "cycles/launch:  " << cycles << "\n"
     << "seconds (all reps): " << FormatDouble(seconds, 3) << "\n"
     << "ALU util:       " << FormatDouble(alu_utilization, 3) << "\n"
     << "fetch util:     " << FormatDouble(fetch_utilization, 3) << "\n"
     << "memory util:    " << FormatDouble(memory_utilization, 3) << "\n"
     << "bottleneck:     " << ToString(bottleneck) << "\n"
     << "GPRs:           " << gpr_count << "\n"
     << "wavefronts/SIMD:" << resident_wavefronts << "\n"
     << "cache hit rate: " << FormatDouble(cache.HitRate(), 3) << "\n";
  return os.str();
}

}  // namespace amdmb::sim
