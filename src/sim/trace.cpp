#include "sim/trace.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "common/env.hpp"
#include "common/table.hpp"

namespace amdmb::sim {

std::size_t DefaultTraceCapacity() { return env::Get().trace_capacity; }

std::string Trace::RenderSummary() const {
  struct Agg {
    std::uint64_t events = 0;
    Cycles busy = 0;
    Cycles queue = 0;
    Cycles latency = 0;
  };
  std::map<isa::ClauseType, Agg> aggs;
  for (const TraceEvent& e : events_) {
    Agg& a = aggs[e.type];
    ++a.events;
    a.busy += e.complete - e.start;
    a.queue += e.start - e.issue;
    a.latency += e.complete - e.start;
  }
  TextTable table({"clause type", "events", "mean queue (cyc)",
                   "mean service+latency (cyc)"});
  for (const auto& [type, a] : aggs) {
    table.AddRow({std::string(isa::ToString(type)), std::to_string(a.events),
                  FormatDouble(static_cast<double>(a.queue) /
                                   static_cast<double>(a.events), 1),
                  FormatDouble(static_cast<double>(a.latency) /
                                   static_cast<double>(a.events), 1)});
  }
  std::ostringstream os;
  os << "Trace summary (" << events_.size() << " events";
  if (dropped_ > 0) {
    os << ", " << dropped_ << " dropped past the capacity of " << capacity_
       << " — raise AMDMB_TRACE_CAP";
  }
  os << ")\n" << table.Render();
  return os.str();
}

std::string Trace::RenderTimeline(std::size_t max_rows) const {
  TextTable table({"issue", "start", "complete", "SIMD", "wave", "clause",
                   "type"});
  const std::size_t rows = std::min(max_rows, events_.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const TraceEvent& e = events_[i];
    table.AddRow({std::to_string(e.issue), std::to_string(e.start),
                  std::to_string(e.complete), std::to_string(e.simd),
                  std::to_string(e.wave), std::to_string(e.clause),
                  std::string(isa::ToString(e.type))});
  }
  std::ostringstream os;
  os << table.Render();
  if (events_.size() > rows) {
    os << "... (" << events_.size() - rows << " more events)\n";
  }
  return os.str();
}

}  // namespace amdmb::sim
