// Per-SIMD execution state: the ALU pipeline and the texture unit block.
//
// The SIMD interleaves its resident wavefronts: an ALU clause occupies
// the ALU pipeline for 4 cycles per VLIW bundle (64 threads over 16
// thread processors); a TEX clause occupies the texture units for its
// service time while the owning wavefront waits out the fetch latency —
// which other wavefronts hide by running their own clauses meanwhile
// (paper Sec. II-A, Fig. 2 discussion).
#pragma once

#include "arch/gpu_arch.hpp"
#include "mem/texture_unit.hpp"

namespace amdmb::sim {

class SimdEngine {
 public:
  SimdEngine(const GpuArch& arch, mem::TextureCache& cache,
             mem::MemoryController& controller)
      : arch_(&arch), tex_(arch, cache, controller) {}

  struct AluRun {
    Cycles start = 0;
    Cycles end = 0;
  };

  /// Runs an ALU clause (or chunk) of `bundles` VLIW instructions
  /// starting no earlier than `now`; returns when the pipe served it.
  /// With fewer than two resident wavefronts only one of the odd/even
  /// slots is filled and throughput halves.
  AluRun RunAluClause(Cycles now, unsigned bundles,
                      unsigned resident_wavefronts);

  mem::TextureUnitBlock& TextureUnits() { return tex_; }

  Cycles AluBusyCycles() const { return alu_busy_; }
  Cycles TexBusyCycles() const { return tex_.BusyCycles(); }

  /// Attaches the profiler's per-launch collector under this engine's
  /// SIMD id, forwarding to the texture-unit block (nullptr detaches).
  /// Pure observation.
  void SetCollector(prof::Collector* collector, unsigned simd) {
    collector_ = collector;
    simd_ = simd;
    tex_.SetCollector(collector, simd);
  }

 private:
  const GpuArch* arch_;
  mem::TextureUnitBlock tex_;
  Cycles alu_free_ = 0;
  Cycles alu_busy_ = 0;
  prof::Collector* collector_ = nullptr;
  unsigned simd_ = 0;
};

}  // namespace amdmb::sim
