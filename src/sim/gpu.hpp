// Whole-GPU timing simulator.
//
// Event-driven at clause granularity: every resident wavefront advances
// clause by clause; ALU clauses contend for the per-SIMD ALU pipeline,
// TEX clauses for the per-SIMD texture units and the shared texture
// cache, and all off-chip traffic funnels through one shared memory
// controller. The simulator reports total cycles plus per-resource busy
// shares, from which it classifies the kernel's bottleneck — the paper's
// three metrics: ALU utilisation, texture fetch, memory access
// (Sec. II-A).
#pragma once

#include <string>

#include "arch/gpu_arch.hpp"
#include "common/status.hpp"
#include "compiler/isa.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/trace.hpp"

namespace amdmb::prof {
class Collector;
}  // namespace amdmb::prof

namespace amdmb::sim {

/// Kernel launch parameters (the per-run knobs the paper varies).
/// Granularity at which resident wavefronts interleave on the ALU
/// pipeline. Hardware interleaves per VLIW instruction; simulating in
/// 32-bundle chunks keeps event counts low while making clause
/// boundaries timing-neutral (the paper's Fig. 5 control experiment).
inline constexpr unsigned kAluInterleaveBundles = 32;

struct LaunchConfig {
  Domain domain{1024, 1024};
  ShaderMode mode = ShaderMode::kPixel;
  BlockShape block{64, 1};  ///< Compute-mode block shape (64x1 naive).
  /// The paper times 5000 back-to-back executions of each kernel
  /// (Sec. III); reported seconds scale by this count.
  unsigned repetitions = 5000;
  /// Watchdog cycle budget for one launch: a simulation whose event
  /// clock passes this many cycles throws WatchdogTimeout instead of
  /// spinning forever (0 = unlimited, the default). The CAL layer maps
  /// the timeout to CalResult::kCalTimeout.
  Cycles watchdog_cycles = 0;
  /// Request hardware-counter profiling for this launch even when
  /// AMDMB_PROF is unset. The CAL layer / suite Runner consult this (or
  /// prof::ProfilingEnabled()) and attach a prof::Collector to Execute.
  bool profile = false;
};

/// Thrown by Gpu::Execute when a launch exceeds its watchdog cycle
/// budget. Transient — a hung kernel is worth one more try.
class WatchdogTimeout : public TransientError {
 public:
  WatchdogTimeout(Cycles budget, Cycles reached);

  Cycles Budget() const { return budget_; }
  Cycles Reached() const { return reached_; }

 private:
  Cycles budget_;
  Cycles reached_;
};

/// Default watchdog budget from AMDMB_WATCHDOG (cycles per launch),
/// validated once; 0 when unset. Throws ConfigError for non-numeric
/// values.
Cycles DefaultWatchdogCycles();

/// Which hardware resource bounds the kernel (paper Sec. II-A).
enum class Bottleneck { kAlu, kFetch, kMemory };

std::string_view ToString(Bottleneck b);

/// Everything one simulated launch reports.
struct KernelStats {
  Cycles cycles = 0;      ///< One launch, start to full drain.
  double seconds = 0.0;   ///< All repetitions at the chip's core clock.
  double alu_utilization = 0.0;   ///< Busiest SIMD's ALU pipeline share.
  double fetch_utilization = 0.0; ///< Busiest SIMD's texture unit share.
  double memory_utilization = 0.0;///< Shared memory controller share.
  Bottleneck bottleneck = Bottleneck::kAlu;
  mem::CacheStats cache;
  mem::DramStats dram;
  unsigned gpr_count = 0;
  unsigned resident_wavefronts = 0;  ///< Per SIMD.
  std::uint64_t wavefront_count = 0;

  std::string Render() const;

  /// Exact equality (doubles compared bitwise) — the determinism
  /// guarantee of the parallel sweep executor is *bit*-identical stats
  /// at any thread count.
  bool operator==(const KernelStats&) const = default;
};

class Gpu {
 public:
  explicit Gpu(GpuArch arch);

  /// Simulates one launch of the compiled kernel. Throws ConfigError for
  /// impossible launches (compute mode on RV670, streaming stores in
  /// compute mode, non-wavefront-divisible domains). When `trace` is
  /// non-null every executed clause is recorded into it; when
  /// `collector` is non-null the launch additionally feeds the
  /// hardware-counter instrumentation hooks (prof::Collector), with no
  /// effect on the returned KernelStats.
  ///
  /// Const and shared-nothing: every piece of launch state (cache,
  /// memory controller, SIMD engines, event queue) is built locally, so
  /// concurrent Execute calls on one Gpu are safe — the property the
  /// parallel sweep executor relies on.
  KernelStats Execute(const isa::Program& program, const LaunchConfig& config,
                      Trace* trace = nullptr,
                      prof::Collector* collector = nullptr) const;

  const GpuArch& Arch() const { return arch_; }

 private:
  GpuArch arch_;
  /// Derived once at construction instead of per launch.
  mem::CacheConfig tex_cache_config_;
};

}  // namespace amdmb::sim
