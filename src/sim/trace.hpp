// Execution tracing: per-clause event records from the timing simulator,
// with a text timeline and per-resource summaries. Useful for inspecting
// *why* a kernel is bound where it is — which the aggregate counters in
// KernelStats cannot show.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "compiler/isa.hpp"

namespace amdmb::sim {

/// One executed clause (or ALU-chunk) of one wavefront.
struct TraceEvent {
  Cycles issue = 0;     ///< When the wavefront wanted to run the clause.
  Cycles start = 0;     ///< When the resource began serving it.
  Cycles complete = 0;  ///< When the wavefront could proceed.
  std::uint32_t wave = 0;
  std::uint16_t simd = 0;
  std::uint16_t clause = 0;
  isa::ClauseType type = isa::ClauseType::kAlu;
};

/// Collects events during Gpu::Execute when attached via LaunchConfig.
/// Collection is capped to bound memory on big launches; `dropped`
/// counts events past the cap.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void Record(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  const std::vector<TraceEvent>& Events() const { return events_; }
  std::uint64_t DroppedCount() const { return dropped_; }

  /// Per-clause-type aggregate: events, busy cycles, mean queueing delay
  /// (start - issue) and mean latency (complete - start).
  std::string RenderSummary() const;

  /// First `max_rows` events as a readable table, time-ordered as
  /// recorded.
  std::string RenderTimeline(std::size_t max_rows = 40) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace amdmb::sim
