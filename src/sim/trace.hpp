// Execution tracing: per-clause event records from the timing simulator,
// with a text timeline and per-resource summaries. Useful for inspecting
// *why* a kernel is bound where it is — which the aggregate counters in
// KernelStats cannot show.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "compiler/isa.hpp"

namespace amdmb::sim {

/// One executed clause (or ALU-chunk) of one wavefront.
struct TraceEvent {
  Cycles issue = 0;     ///< When the wavefront wanted to run the clause.
  Cycles start = 0;     ///< When the resource began serving it.
  Cycles complete = 0;  ///< When the wavefront could proceed.
  std::uint32_t wave = 0;
  std::uint16_t simd = 0;
  std::uint16_t clause = 0;
  isa::ClauseType type = isa::ClauseType::kAlu;
};

/// The process-wide event-capacity default: AMDMB_TRACE_CAP when set
/// (validated positive), otherwise 2^20 events. Shared by Trace and the
/// profiler's Collector so one knob bounds both buffers.
std::size_t DefaultTraceCapacity();

/// Collects events during Gpu::Execute when attached via LaunchConfig.
/// Collection is capped to bound memory on big launches; `dropped`
/// counts events past the cap — and is surfaced in RenderSummary and
/// the JSON profile block, never silently discarded.
class Trace {
 public:
  Trace() : capacity_(DefaultTraceCapacity()) {}
  explicit Trace(std::size_t capacity) : capacity_(capacity) {}

  void Record(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  const std::vector<TraceEvent>& Events() const { return events_; }
  std::uint64_t DroppedCount() const { return dropped_; }
  std::size_t Capacity() const { return capacity_; }

  /// Per-clause-type aggregate: events, busy cycles, mean queueing delay
  /// (start - issue) and mean latency (complete - start).
  std::string RenderSummary() const;

  /// First `max_rows` events as a readable table, time-ordered as
  /// recorded.
  std::string RenderTimeline(std::size_t max_rows = 40) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace amdmb::sim
