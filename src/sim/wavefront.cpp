#include "sim/wavefront.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace amdmb::sim {

namespace {

/// Region stride between consecutive resources: large enough to cover
/// the sparse Morton footprint of the tile grid (the Z-order index of
/// the last tile of a WxH grid spans the square power-of-two envelope,
/// not just W*H entries), plus a 13-line stagger so equal-sized inputs
/// land in different cache sets.
std::uint64_t RegionStride(const Domain& domain, const mem::TileShape& tile,
                           Bytes line_bytes) {
  const std::uint64_t cols = (domain.width + tile.width - 1) / tile.width;
  const std::uint64_t rows = (domain.height + tile.height - 1) / tile.height;
  std::uint64_t envelope = 1;
  while (envelope < std::max(cols, rows)) envelope *= 2;
  return (envelope * envelope + 13) * line_bytes;
}

}  // namespace

ResourceLayouts::ResourceLayouts(const GpuArch& arch, const il::Signature& sig,
                                 const Domain& domain)
    : type_(sig.type),
      line_bytes_(arch.l1.line_bytes),
      tile_(mem::TileFor(arch.l1.line_bytes, ElementBytes(sig.type))),
      width_(domain.width) {
  Require(domain.width > 0 && domain.height > 0,
          "ResourceLayouts: empty domain");
  const std::uint64_t stride = RegionStride(domain, tile_, line_bytes_);
  // Inputs first, then outputs, in one address space.
  constexpr std::uint64_t kInputBase = 0x1000'0000ull;
  for (unsigned i = 0; i < sig.inputs; ++i) {
    const std::uint64_t base = kInputBase + i * stride;
    input_bases_.push_back(base);
    input_layouts_.emplace_back(base, domain.width, tile_, line_bytes_);
  }
  const std::uint64_t output_base = kInputBase + sig.inputs * stride;
  for (unsigned o = 0; o < sig.outputs; ++o) {
    output_bases_.push_back(output_base + o * stride);
  }
}

void ResourceLayouts::LinesFor(unsigned resource, const WaveRect& rect,
                               std::vector<mem::LineId>& out) const {
  Check(resource < input_layouts_.size(),
        "ResourceLayouts::LinesFor: resource out of range");
  const mem::TiledLayout& layout = input_layouts_[resource];
  const unsigned x1 = rect.x + rect.width - 1;
  const unsigned y1 = rect.y + rect.height - 1;
  for (unsigned ty = rect.y / tile_.height; ty <= y1 / tile_.height; ++ty) {
    for (unsigned tx = rect.x / tile_.width; tx <= x1 / tile_.width; ++tx) {
      out.push_back(layout.LineOf(tx * tile_.width, ty * tile_.height));
    }
  }
}

std::uint64_t ResourceLayouts::GlobalAddress(unsigned resource, bool is_output,
                                             const WaveRect& rect) const {
  const auto& bases = is_output ? output_bases_ : input_bases_;
  Check(resource < bases.size(),
        "ResourceLayouts::GlobalAddress: resource out of range");
  return mem::LinearAddress(bases[resource], width_, rect.x, rect.y,
                            ElementBytes(type_));
}

}  // namespace amdmb::sim
