#include "sim/simd_engine.hpp"

#include <algorithm>

#include "arch/occupancy.hpp"
#include "prof/collector.hpp"

namespace amdmb::sim {

SimdEngine::AluRun SimdEngine::RunAluClause(Cycles now, unsigned bundles,
                                            unsigned resident_wavefronts) {
  const unsigned slot_factor =
      SingleSlotPenaltyApplies(resident_wavefronts) ? 2u : 1u;
  const Cycles duration = static_cast<Cycles>(bundles) *
                          arch_->CyclesPerBundle() * slot_factor;
  const Cycles start = std::max(now, alu_free_);
  alu_free_ = start + duration;
  alu_busy_ += duration;
  if (collector_ != nullptr) collector_->OnAluChunk(simd_, duration);
  return AluRun{start, alu_free_};
}

}  // namespace amdmb::sim
