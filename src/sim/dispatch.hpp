// Wavefront dispatch: maps an execution domain to the sequence of
// 64-thread wavefronts the hardware schedules.
//
// Pixel shader mode: the rasterizer walks the domain in 8x8 screen tiles
// (a 2-D order the texture cache is optimised for — paper Sec. IV-A).
// Compute shader mode: linear dispatch; the programmer picks the block
// shape (64x1 naive, 4x16 optimised, ...) and the elements must pad to a
// multiple of the wavefront size (Sec. IV-D).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace amdmb::sim {

/// The rectangle of domain elements one wavefront covers. All dispatch
/// shapes used by the paper (8x8 pixel tiles, 64x1 and 4x16 compute
/// blocks) are rectangles.
struct WaveRect {
  unsigned x = 0;
  unsigned y = 0;
  unsigned width = 0;
  unsigned height = 0;

  unsigned ThreadCount() const { return width * height; }
  bool operator==(const WaveRect&) const = default;
};

/// Pixel-mode dispatch: 8x8 tiles in row-major tile order. The domain
/// must be a multiple of the tile size (the paper sweeps domains in
/// multiples of 8 in pixel mode).
std::vector<WaveRect> DispatchPixel(const Domain& domain,
                                    unsigned wavefront_size);

/// Compute-mode dispatch: blocks of the given shape in row-major block
/// order. The block must hold exactly one wavefront and divide the
/// domain (the paper pads compute domains to multiples of 64).
std::vector<WaveRect> DispatchCompute(const Domain& domain, BlockShape block,
                                      unsigned wavefront_size);

/// Dispatch for either mode.
std::vector<WaveRect> BuildDispatch(const Domain& domain, ShaderMode mode,
                                    BlockShape block, unsigned wavefront_size);

}  // namespace amdmb::sim
