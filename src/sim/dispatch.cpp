#include "sim/dispatch.hpp"

#include <cmath>

#include "common/status.hpp"

namespace amdmb::sim {

namespace {

std::vector<WaveRect> TileDispatch(const Domain& domain, unsigned tile_w,
                                   unsigned tile_h) {
  std::vector<WaveRect> waves;
  waves.reserve(static_cast<std::size_t>(domain.width / tile_w) *
                (domain.height / tile_h));
  for (unsigned ty = 0; ty < domain.height; ty += tile_h) {
    for (unsigned tx = 0; tx < domain.width; tx += tile_w) {
      waves.push_back(WaveRect{tx, ty, tile_w, tile_h});
    }
  }
  return waves;
}

}  // namespace

std::vector<WaveRect> DispatchPixel(const Domain& domain,
                                    unsigned wavefront_size) {
  const auto tile = static_cast<unsigned>(
      std::lround(std::sqrt(static_cast<double>(wavefront_size))));
  Require(tile * tile == wavefront_size,
          "DispatchPixel: wavefront size must be a perfect square");
  Require(domain.width % tile == 0 && domain.height % tile == 0,
          "DispatchPixel: domain must be a multiple of the 8x8 raster tile");
  return TileDispatch(domain, tile, tile);
}

std::vector<WaveRect> DispatchCompute(const Domain& domain, BlockShape block,
                                      unsigned wavefront_size) {
  Require(block.ThreadCount() == wavefront_size,
          "DispatchCompute: block must hold exactly one wavefront");
  Require(domain.width % block.x == 0 && domain.height % block.y == 0,
          "DispatchCompute: domain must be a multiple of the block shape "
          "(compute elements pad to the wavefront size)");
  return TileDispatch(domain, block.x, block.y);
}

std::vector<WaveRect> BuildDispatch(const Domain& domain, ShaderMode mode,
                                    BlockShape block,
                                    unsigned wavefront_size) {
  Require(domain.ThreadCount() > 0, "BuildDispatch: empty domain");
  return mode == ShaderMode::kPixel
             ? DispatchPixel(domain, wavefront_size)
             : DispatchCompute(domain, block, wavefront_size);
}

}  // namespace amdmb::sim
