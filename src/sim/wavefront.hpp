// Launch-time resource geometry: where each input/output stream lives in
// simulated memory and which cache lines / burst ranges a wavefront's
// rectangle touches.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/types.hpp"
#include "il/il.hpp"
#include "mem/tiling.hpp"
#include "sim/dispatch.hpp"

namespace amdmb::sim {

/// Byte addresses of all declared streams of one launch. Inputs bound to
/// the texture path get a tiled layout; global-path streams are linear.
/// Bases are staggered by a few lines so that equally-sized inputs do not
/// alias pathologically in the texture-cache index.
class ResourceLayouts {
 public:
  ResourceLayouts(const GpuArch& arch, const il::Signature& sig,
                  const Domain& domain);

  /// Appends the distinct cache lines input `resource` contributes for a
  /// wavefront covering `rect` (texture path only).
  void LinesFor(unsigned resource, const WaveRect& rect,
                std::vector<mem::LineId>& out) const;

  /// Burst start address for a global read/write of `resource` by `rect`.
  std::uint64_t GlobalAddress(unsigned resource, bool is_output,
                              const WaveRect& rect) const;

  /// Bytes one wavefront instruction moves for `rect`.
  Bytes BytesFor(const WaveRect& rect) const {
    return static_cast<Bytes>(rect.ThreadCount()) * ElementBytes(type_);
  }

  DataType type() const { return type_; }

 private:
  DataType type_;
  Bytes line_bytes_;
  mem::TileShape tile_;
  std::vector<mem::TiledLayout> input_layouts_;  ///< Texture path only.
  std::vector<std::uint64_t> input_bases_;
  std::vector<std::uint64_t> output_bases_;
  unsigned width_;
};

}  // namespace amdmb::sim
