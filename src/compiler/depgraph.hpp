// Def/use analysis of IL kernels (single-assignment virtual registers).
#pragma once

#include <vector>

#include "il/il.hpp"

namespace amdmb::compiler {

/// Def and use sites of every virtual register, by IL instruction index.
class DepGraph {
 public:
  explicit DepGraph(const il::Kernel& kernel);

  static constexpr unsigned kNoDef = ~0u;

  /// IL index of the instruction defining `vreg`, or kNoDef.
  unsigned DefSite(unsigned vreg) const;

  /// IL indices of instructions reading `vreg`, ascending.
  const std::vector<unsigned>& UseSites(unsigned vreg) const;

  unsigned VirtualRegCount() const {
    return static_cast<unsigned>(defs_.size());
  }

  /// True when IL instruction `consumer` reads the value defined by IL
  /// instruction `producer`.
  bool DependsOn(unsigned consumer, unsigned producer) const;

 private:
  std::vector<unsigned> defs_;                ///< vreg -> il index.
  std::vector<std::vector<unsigned>> uses_;   ///< vreg -> il indices.
  const il::Kernel* kernel_;
};

}  // namespace amdmb::compiler
