// Binary serialization of compiled ISA programs.
//
// CAL distributed compiled kernels as binary images so applications
// could cache compilation results; this module provides the equivalent:
// a compact little-endian encoding of isa::Program with a magic/version
// header, and a strict decoder that rejects truncated or corrupt images
// with ConfigError (never reads out of bounds).
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/isa.hpp"

namespace amdmb::compiler {

/// Serialized program image.
using BinaryImage = std::vector<std::uint8_t>;

inline constexpr std::uint32_t kBinaryMagic = 0x424D4441;  // "AMDB".
inline constexpr std::uint32_t kBinaryVersion = 1;

/// Encodes a compiled program. The encoding is deterministic: equal
/// programs produce byte-identical images.
BinaryImage Encode(const isa::Program& program);

/// Decodes an image produced by Encode. Throws ConfigError on bad magic,
/// unsupported version, truncation, or invalid field values.
isa::Program Decode(const BinaryImage& image);

}  // namespace amdmb::compiler
