#include "compiler/ska.hpp"

#include <sstream>

#include "arch/occupancy.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"

namespace amdmb::compiler {

std::string_view ToString(StaticBound b) {
  switch (b) {
    case StaticBound::kAlu: return "ALU-bound";
    case StaticBound::kFetch: return "fetch-bound";
    case StaticBound::kBalanced: return "balanced";
  }
  throw SimError("ToString(StaticBound): unknown value");
}

SkaReport Analyze(const isa::Program& program, const GpuArch& arch) {
  SkaReport r;
  r.alu_ops = program.stats.alu_ops;
  r.fetch_ops = program.stats.tex_fetches + program.stats.global_reads;
  r.write_ops = program.stats.writes;
  const double tp_to_tex = static_cast<double>(
      arch.thread_processors_per_simd) / arch.tex_units_per_simd;
  r.alu_fetch_ratio =
      SafeRatio(static_cast<double>(r.alu_ops), r.fetch_ops) / tp_to_tex;
  r.gpr_count = program.gpr_count;
  r.theoretical_wavefronts = TheoreticalWavefronts(arch, r.gpr_count);
  r.resident_wavefronts = WavefrontsPerSimd(arch, r.gpr_count);
  if (r.fetch_ops == 0 || r.alu_fetch_ratio > kBalancedRatioHigh) {
    r.bound = StaticBound::kAlu;
  } else if (r.alu_fetch_ratio < kBalancedRatioLow) {
    r.bound = StaticBound::kFetch;
  } else {
    r.bound = StaticBound::kBalanced;
  }
  return r;
}

std::string SkaReport::Render() const {
  std::ostringstream os;
  os << "SKA report:\n"
     << "  ALU ops:            " << alu_ops << "\n"
     << "  Fetch ops:          " << fetch_ops << "\n"
     << "  Write ops:          " << write_ops << "\n"
     << "  ALU:Fetch ratio:    " << FormatDouble(alu_fetch_ratio, 2)
     << "  (4:1-normalised)\n"
     << "  GPRs:               " << gpr_count << "\n"
     << "  Wavefronts (theor): " << theoretical_wavefronts << "\n"
     << "  Wavefronts (sched): " << resident_wavefronts << "\n"
     << "  Static bound:       " << ToString(bound) << "\n";
  return os.str();
}

}  // namespace amdmb::compiler
