#include "compiler/vliw_packer.hpp"

#include "common/status.hpp"

namespace amdmb::compiler {

std::vector<ProtoBundle> PackVliw(const il::Kernel& kernel,
                                  const DepGraph& deps,
                                  const std::vector<unsigned>& alu_il_indices,
                                  const PackOptions& opts) {
  std::vector<ProtoBundle> bundles;
  const bool vec4 = kernel.sig.type == DataType::kFloat4;

  ProtoBundle current;
  unsigned general_used = 0;
  bool trans_used = false;

  auto flush = [&] {
    if (!current.empty()) {
      bundles.push_back(current);
      current.clear();
      general_used = 0;
      trans_used = false;
    }
  };

  for (unsigned il_idx : alu_il_indices) {
    const il::Inst& inst = kernel.code[il_idx];
    Check(il::IsAlu(inst.op), "PackVliw: non-ALU op in ALU run");

    const bool trans = il::IsTranscendental(inst.op);
    // Lane demand: float4 general ops need all four general lanes; float4
    // transcendental ops serialise over the t core (modelled as needing an
    // empty bundle).
    const unsigned lanes_needed = vec4 && !trans ? opts.general_lanes : 1;

    bool fits = true;
    if (trans || (vec4 && trans)) {
      fits = opts.has_trans_lane && !trans_used && (!vec4 || current.empty());
    } else if (vec4) {
      fits = general_used == 0;
    } else {
      const bool general_free = general_used < opts.general_lanes;
      const bool trans_free = opts.has_trans_lane && !trans_used;
      fits = general_free || trans_free;
    }
    if (fits) {
      // Dependence on an op already in the current bundle forbids joining.
      for (unsigned other : current) {
        if (deps.DependsOn(il_idx, other)) {
          fits = false;
          break;
        }
      }
    }
    if (!fits) flush();

    current.push_back(il_idx);
    if (trans) {
      trans_used = true;
    } else if (vec4) {
      general_used += lanes_needed;
    } else if (general_used < opts.general_lanes) {
      ++general_used;
    } else {
      trans_used = true;  // General op spilled onto the t core.
    }
  }
  flush();
  return bundles;
}

}  // namespace amdmb::compiler
