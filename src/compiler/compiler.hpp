// IL -> ISA compilation driver: verification, clause formation, VLIW
// packing, register allocation, ISA emission.
#pragma once

#include "arch/gpu_arch.hpp"
#include "compiler/clause_builder.hpp"
#include "compiler/isa.hpp"
#include "il/il.hpp"

namespace amdmb::compiler {

/// Compile options derived from a machine description.
CompileOptions OptionsFor(const GpuArch& arch);

/// Compiles an IL kernel to a clause-based ISA program. Throws
/// ConfigError if the kernel fails IL verification (mirroring CAL
/// rejecting / optimizing away invalid kernels).
isa::Program Compile(const il::Kernel& kernel, const CompileOptions& opts);

/// Convenience overload using the architecture's clause limits.
isa::Program Compile(const il::Kernel& kernel, const GpuArch& arch);

}  // namespace amdmb::compiler
