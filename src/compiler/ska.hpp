// Static kernel analysis in the style of AMD's StreamKernelAnalyzer (SKA).
//
// The paper (Sec. III-A) leans on two SKA conventions we reproduce:
//  * The reported ALU:Fetch ratio is normalised by the hardware's 4:1
//    thread-processor-to-texture-unit ratio: 16 ALU ops with 4 fetches
//    reports as 1.0, and a kernel is "balanced" between 0.98 and 1.09.
//  * Register usage and the resulting theoretical wavefront occupancy.
#pragma once

#include <string>

#include "arch/gpu_arch.hpp"
#include "compiler/isa.hpp"

namespace amdmb::compiler {

/// SKA's static boundedness guess (the dynamic truth comes from the
/// simulator; Sec. III-A explains why the static view can mislead).
enum class StaticBound { kAlu, kFetch, kBalanced };

std::string_view ToString(StaticBound b);

struct SkaReport {
  unsigned alu_ops = 0;
  unsigned fetch_ops = 0;  ///< Texture fetches + global reads.
  unsigned write_ops = 0;
  /// (alu_ops / fetch_ops) / 4 — the SKA-normalised ratio.
  double alu_fetch_ratio = 0.0;
  unsigned gpr_count = 0;
  unsigned theoretical_wavefronts = 0;  ///< 256 / GPRs (uncapped).
  unsigned resident_wavefronts = 0;     ///< After the scheduler cap.
  StaticBound bound = StaticBound::kBalanced;

  std::string Render() const;
};

/// SKA's "good" ratio window (Sec. III-A).
inline constexpr double kBalancedRatioLow = 0.98;
inline constexpr double kBalancedRatioHigh = 1.09;

SkaReport Analyze(const isa::Program& program, const GpuArch& arch);

}  // namespace amdmb::compiler
