#include "compiler/compiler.hpp"

#include <unordered_map>

#include "common/status.hpp"
#include "compiler/regalloc.hpp"
#include "il/verifier.hpp"

namespace amdmb::compiler {

CompileOptions OptionsFor(const GpuArch& arch) {
  CompileOptions opts;
  opts.max_tex_fetches_per_clause = arch.max_tex_fetches_per_clause;
  opts.max_alu_bundles_per_clause = arch.max_alu_bundles_per_clause;
  opts.clause_temps = arch.clause_temps_per_slot * 2;
  opts.pack.general_lanes = arch.vliw_width - 1;
  opts.pack.has_trans_lane = true;
  return opts;
}

namespace {

isa::PhysOperand LowerOperand(const il::Operand& op, const Allocation& alloc) {
  switch (op.kind) {
    case il::OperandKind::kVirtualReg:
      return alloc.location[op.index];
    case il::OperandKind::kConstBuf:
      return {isa::Loc::kConst, op.index, 0.0f};
    case il::OperandKind::kLiteral:
      return {isa::Loc::kLiteral, 0, op.literal};
  }
  throw SimError("LowerOperand: unknown operand kind");
}

}  // namespace

isa::Program Compile(const il::Kernel& kernel, const CompileOptions& opts) {
  il::VerifyOrThrow(kernel);

  const DepGraph deps(kernel);
  const std::vector<LoweredClause> lowered = BuildClauses(kernel, deps, opts);
  const Allocation alloc = Allocate(kernel, deps, lowered, opts);

  isa::Program prog;
  prog.name = kernel.name;
  prog.sig = kernel.sig;
  prog.gpr_count = std::max(1u, alloc.gpr_count);

  const bool vec4 = kernel.sig.type == DataType::kFloat4;

  for (const LoweredClause& lc : lowered) {
    isa::Clause clause;
    clause.type = lc.type;
    // Lane of each value produced by the previous bundle of this clause,
    // for resolving PV reads to the correct lane.
    std::unordered_map<unsigned, unsigned> prev_lanes;
    for (const LoweredSlot& slot : lc.slots) {
      switch (slot.kind) {
        case LoweredSlot::Kind::kFetch: {
          const il::Inst& inst = kernel.code[slot.il_ops.front()];
          isa::FetchInst f;
          f.resource = inst.resource;
          f.dst = alloc.location[inst.dst];
          Check(f.dst.loc == isa::Loc::kGpr,
                "Compile: fetch destination must be a GPR");
          f.virtual_reg = inst.dst;
          clause.fetches.push_back(f);
          ++prog.stats.tex_fetches;
          if (lc.type == isa::ClauseType::kMemRead) {
            --prog.stats.tex_fetches;
            ++prog.stats.global_reads;
          }
          break;
        }
        case LoweredSlot::Kind::kBundle: {
          isa::Bundle bundle;
          std::unordered_map<unsigned, unsigned> cur_lanes;
          unsigned next_lane = 0;
          for (unsigned il_idx : slot.il_ops) {
            const il::Inst& inst = kernel.code[il_idx];
            isa::MicroOp op;
            op.op = inst.op;
            op.vec4 = vec4 && !il::IsTranscendental(inst.op);
            if (il::IsTranscendental(inst.op)) {
              op.lane = 4;
            } else if (op.vec4) {
              op.lane = 0;
              next_lane = 4;
            } else {
              op.lane = next_lane < 4 ? next_lane++ : 4;
            }
            op.dst = alloc.location[inst.dst];
            if (op.dst.loc == isa::Loc::kPv) op.dst.index = op.lane;
            op.virtual_reg = inst.dst;
            cur_lanes.emplace(inst.dst, op.lane);
            for (const il::Operand& src : inst.srcs) {
              isa::PhysOperand lowered_src = LowerOperand(src, alloc);
              if (lowered_src.loc == isa::Loc::kPv) {
                // PV reads resolve against the previous bundle's lanes.
                const auto it = prev_lanes.find(src.index);
                Check(it != prev_lanes.end(),
                      "Compile: PV operand without previous-bundle producer");
                lowered_src.index = it->second;
              }
              op.srcs.push_back(lowered_src);
            }
            bundle.ops.push_back(std::move(op));
            ++prog.stats.alu_ops;
          }
          prev_lanes = std::move(cur_lanes);
          clause.bundles.push_back(std::move(bundle));
          ++prog.stats.alu_bundles;
          break;
        }
        case LoweredSlot::Kind::kWrite: {
          const il::Inst& inst = kernel.code[slot.il_ops.front()];
          isa::WriteInst w;
          w.resource = inst.resource;
          Check(inst.srcs.front().kind == il::OperandKind::kVirtualReg,
                "Compile: write source must be a register");
          w.src = alloc.location[inst.srcs.front().index];
          Check(w.src.loc == isa::Loc::kGpr,
                "Compile: write source must live in a GPR");
          clause.writes.push_back(w);
          ++prog.stats.writes;
          break;
        }
      }
    }
    prog.clauses.push_back(std::move(clause));
  }
  prog.stats.clause_count = static_cast<unsigned>(prog.clauses.size());
  return prog;
}

isa::Program Compile(const il::Kernel& kernel, const GpuArch& arch) {
  return Compile(kernel, OptionsFor(arch));
}

}  // namespace amdmb::compiler
