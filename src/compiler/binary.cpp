#include "compiler/binary.hpp"

#include <bit>
#include <cstring>

#include "common/status.hpp"

namespace amdmb::compiler {

namespace {

// ---- Encoding ------------------------------------------------------------

class Writer {
 public:
  explicit Writer(BinaryImage& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xFF);
  }
  void F32(float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U32(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  BinaryImage& out_;
};

class Reader {
 public:
  explicit Reader(const BinaryImage& in) : in_(in) {}

  std::uint8_t U8() {
    Require(pos_ + 1 <= in_.size(), "ISA image truncated");
    return in_[pos_++];
  }
  std::uint32_t U32() {
    Require(pos_ + 4 <= in_.size(), "ISA image truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return v;
  }
  float F32() {
    const std::uint32_t bits = U32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const std::uint32_t size = U32();
    Require(pos_ + size <= in_.size(), "ISA image truncated in string");
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), size);
    pos_ += size;
    return s;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const BinaryImage& in_;
  std::size_t pos_ = 0;
};

template <typename Enum>
std::uint8_t EncodeEnum(Enum e) {
  return static_cast<std::uint8_t>(e);
}

template <typename Enum>
Enum DecodeEnum(std::uint8_t raw, std::uint8_t max_value,
                const char* what) {
  Require(raw <= max_value, std::string("ISA image: invalid ") + what);
  return static_cast<Enum>(raw);
}

void EncodeOperand(Writer& w, const isa::PhysOperand& op) {
  w.U8(EncodeEnum(op.loc));
  w.U32(op.index);
  w.F32(op.literal);
}

isa::PhysOperand DecodeOperand(Reader& r) {
  isa::PhysOperand op;
  op.loc = DecodeEnum<isa::Loc>(r.U8(), 4, "operand location");
  op.index = r.U32();
  op.literal = r.F32();
  return op;
}

}  // namespace

BinaryImage Encode(const isa::Program& program) {
  BinaryImage out;
  Writer w(out);
  w.U32(kBinaryMagic);
  w.U32(kBinaryVersion);
  w.Str(program.name);
  w.U32(program.sig.inputs);
  w.U32(program.sig.outputs);
  w.U32(program.sig.constants);
  w.U8(EncodeEnum(program.sig.type));
  w.U8(EncodeEnum(program.sig.read_path));
  w.U8(EncodeEnum(program.sig.write_path));
  w.U32(program.gpr_count);
  w.U32(program.stats.alu_ops);
  w.U32(program.stats.alu_bundles);
  w.U32(program.stats.tex_fetches);
  w.U32(program.stats.global_reads);
  w.U32(program.stats.writes);
  w.U32(program.stats.clause_count);

  w.U32(static_cast<std::uint32_t>(program.clauses.size()));
  for (const isa::Clause& clause : program.clauses) {
    w.U8(EncodeEnum(clause.type));
    w.U32(static_cast<std::uint32_t>(clause.fetches.size()));
    for (const isa::FetchInst& f : clause.fetches) {
      w.U32(f.resource);
      EncodeOperand(w, f.dst);
      w.U32(f.virtual_reg);
    }
    w.U32(static_cast<std::uint32_t>(clause.bundles.size()));
    for (const isa::Bundle& bundle : clause.bundles) {
      w.U32(static_cast<std::uint32_t>(bundle.ops.size()));
      for (const isa::MicroOp& op : bundle.ops) {
        w.U8(static_cast<std::uint8_t>(op.op));
        w.U8(static_cast<std::uint8_t>(op.lane));
        w.U8(op.vec4 ? 1 : 0);
        EncodeOperand(w, op.dst);
        w.U32(op.virtual_reg);
        w.U32(static_cast<std::uint32_t>(op.srcs.size()));
        for (const isa::PhysOperand& src : op.srcs) EncodeOperand(w, src);
      }
    }
    w.U32(static_cast<std::uint32_t>(clause.writes.size()));
    for (const isa::WriteInst& wr : clause.writes) {
      w.U32(wr.resource);
      EncodeOperand(w, wr.src);
    }
  }
  return out;
}

isa::Program Decode(const BinaryImage& image) {
  Reader r(image);
  Require(r.U32() == kBinaryMagic, "ISA image: bad magic");
  Require(r.U32() == kBinaryVersion, "ISA image: unsupported version");

  isa::Program program;
  program.name = r.Str();
  program.sig.inputs = r.U32();
  program.sig.outputs = r.U32();
  program.sig.constants = r.U32();
  program.sig.type = DecodeEnum<DataType>(r.U8(), 1, "data type");
  program.sig.read_path = DecodeEnum<ReadPath>(r.U8(), 1, "read path");
  program.sig.write_path = DecodeEnum<WritePath>(r.U8(), 1, "write path");
  program.gpr_count = r.U32();
  Require(program.gpr_count <= 256, "ISA image: GPR count out of range");
  program.stats.alu_ops = r.U32();
  program.stats.alu_bundles = r.U32();
  program.stats.tex_fetches = r.U32();
  program.stats.global_reads = r.U32();
  program.stats.writes = r.U32();
  program.stats.clause_count = r.U32();

  const std::uint32_t clause_count = r.U32();
  Require(clause_count == program.stats.clause_count,
          "ISA image: clause count mismatch");
  // A clause record is at least ~13 bytes; bound allocations by the
  // remaining bytes rather than trusting the count.
  Require(clause_count <= image.size(), "ISA image: absurd clause count");
  program.clauses.reserve(clause_count);
  for (std::uint32_t c = 0; c < clause_count; ++c) {
    isa::Clause clause;
    clause.type = DecodeEnum<isa::ClauseType>(r.U8(), 4, "clause type");
    const std::uint32_t fetches = r.U32();
    Require(fetches <= image.size(), "ISA image: absurd fetch count");
    for (std::uint32_t i = 0; i < fetches; ++i) {
      isa::FetchInst f;
      f.resource = r.U32();
      f.dst = DecodeOperand(r);
      f.virtual_reg = r.U32();
      clause.fetches.push_back(f);
    }
    const std::uint32_t bundles = r.U32();
    Require(bundles <= image.size(), "ISA image: absurd bundle count");
    for (std::uint32_t b = 0; b < bundles; ++b) {
      isa::Bundle bundle;
      const std::uint32_t ops = r.U32();
      Require(ops <= 5, "ISA image: bundle wider than the VLIW");
      for (std::uint32_t o = 0; o < ops; ++o) {
        isa::MicroOp op;
        op.op = DecodeEnum<il::Opcode>(
            r.U8(), static_cast<std::uint8_t>(il::Opcode::kClauseBreak),
            "opcode");
        op.lane = r.U8();
        Require(op.lane <= 4, "ISA image: lane out of range");
        op.vec4 = r.U8() != 0;
        op.dst = DecodeOperand(r);
        op.virtual_reg = r.U32();
        const std::uint32_t srcs = r.U32();
        Require(srcs <= 3, "ISA image: too many sources");
        for (std::uint32_t s = 0; s < srcs; ++s) {
          op.srcs.push_back(DecodeOperand(r));
        }
        bundle.ops.push_back(std::move(op));
      }
      clause.bundles.push_back(std::move(bundle));
    }
    const std::uint32_t writes = r.U32();
    Require(writes <= image.size(), "ISA image: absurd write count");
    for (std::uint32_t i = 0; i < writes; ++i) {
      isa::WriteInst wr;
      wr.resource = r.U32();
      wr.src = DecodeOperand(r);
      clause.writes.push_back(wr);
    }
    program.clauses.push_back(std::move(clause));
  }
  Require(r.AtEnd(), "ISA image: trailing bytes");
  return program;
}

}  // namespace amdmb::compiler
