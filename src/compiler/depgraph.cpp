#include "compiler/depgraph.hpp"

#include "common/status.hpp"

namespace amdmb::compiler {

DepGraph::DepGraph(const il::Kernel& kernel) : kernel_(&kernel) {
  unsigned max_reg = 0;
  for (const il::Inst& inst : kernel.code) {
    if (il::IsFetch(inst.op) || il::IsAlu(inst.op)) {
      max_reg = std::max(max_reg, inst.dst + 1);
    }
  }
  defs_.assign(max_reg, kNoDef);
  uses_.assign(max_reg, {});
  for (unsigned i = 0; i < kernel.code.size(); ++i) {
    const il::Inst& inst = kernel.code[i];
    for (const il::Operand& src : inst.srcs) {
      if (src.kind == il::OperandKind::kVirtualReg) {
        Check(src.index < max_reg, "DepGraph: operand register out of range");
        uses_[src.index].push_back(i);
      }
    }
    if (il::IsFetch(inst.op) || il::IsAlu(inst.op)) {
      Check(defs_[inst.dst] == kNoDef, "DepGraph: register defined twice");
      defs_[inst.dst] = i;
    }
  }
}

unsigned DepGraph::DefSite(unsigned vreg) const {
  Check(vreg < defs_.size(), "DepGraph::DefSite: vreg out of range");
  return defs_[vreg];
}

const std::vector<unsigned>& DepGraph::UseSites(unsigned vreg) const {
  Check(vreg < uses_.size(), "DepGraph::UseSites: vreg out of range");
  return uses_[vreg];
}

bool DepGraph::DependsOn(unsigned consumer, unsigned producer) const {
  const il::Inst& c = kernel_->code[consumer];
  const il::Inst& p = kernel_->code[producer];
  if (!il::IsFetch(p.op) && !il::IsAlu(p.op)) return false;
  for (const il::Operand& src : c.srcs) {
    if (src.kind == il::OperandKind::kVirtualReg && src.index == p.dst) {
      return true;
    }
  }
  return false;
}

}  // namespace amdmb::compiler
