// Clause-based VLIW ISA representation — the compiler's output and the
// timing simulator's input.
//
// Mirrors the R600/R700 execution model the paper describes (Sec. II):
// instructions are grouped into clauses (TEX, ALU, EXP/MEM); ALU clauses
// hold VLIW bundles of up to five micro-ops on the x/y/z/w general cores
// and the t transcendental core; values produced by the previous bundle
// are read through the PV ("previous vector") register; short-lived
// values inside a clause live in clause-temporary registers (T0..),
// which come from the GPR pool per slot but are free between clauses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "il/il.hpp"

namespace amdmb::isa {

enum class ClauseType : std::uint8_t {
  kTex,       ///< Texture fetch clause (SAMPLE).
  kMemRead,   ///< Uncached global-memory read clause.
  kAlu,       ///< VLIW ALU clause.
  kExport,    ///< Streaming store to color buffers (EXP_DONE).
  kMemWrite,  ///< Uncached global-memory write clause.
};

std::string_view ToString(ClauseType t);

/// Physical storage class of an operand after register allocation.
enum class Loc : std::uint8_t {
  kGpr,      ///< General-purpose register Rn (counts toward occupancy).
  kPv,       ///< Previous-vector register (result of the previous bundle).
  kTemp,     ///< Clause-temporary register Tn (live only inside a clause).
  kConst,    ///< Constant-buffer element.
  kLiteral,  ///< Inline literal.
};

struct PhysOperand {
  Loc loc = Loc::kGpr;
  unsigned index = 0;
  float literal = 0.0f;
};

/// One fetch in a TEX or memory-read clause.
struct FetchInst {
  unsigned resource = 0;     ///< Which input stream.
  PhysOperand dst;           ///< Always a GPR.
  unsigned virtual_reg = 0;  ///< IL-level id (for interpretation/tests).
};

/// One lane of a VLIW bundle.
struct MicroOp {
  il::Opcode op = il::Opcode::kMov;
  unsigned lane = 0;   ///< 0..3 = x,y,z,w general cores; 4 = t core.
  bool vec4 = false;   ///< float4 op occupying lanes 0..3 as one unit.
  PhysOperand dst;
  std::vector<PhysOperand> srcs;
  unsigned virtual_reg = 0;
};

/// One VLIW instruction: micro-ops co-issued in the same cycles.
struct Bundle {
  std::vector<MicroOp> ops;

  /// Lane slots occupied (a vec4 op occupies 4).
  unsigned SlotCount() const;
};

/// One write in an export or memory-write clause.
struct WriteInst {
  unsigned resource = 0;  ///< Which output stream.
  PhysOperand src;        ///< Always a GPR.
};

struct Clause {
  ClauseType type = ClauseType::kAlu;
  std::vector<FetchInst> fetches;  ///< kTex / kMemRead.
  std::vector<Bundle> bundles;     ///< kAlu.
  std::vector<WriteInst> writes;   ///< kExport / kMemWrite.
};

/// Static instruction statistics of a compiled program, the numbers the
/// StreamKernelAnalyzer reports.
struct StaticStats {
  unsigned alu_ops = 0;       ///< IL-level ALU operation count.
  unsigned alu_bundles = 0;   ///< VLIW instruction count.
  unsigned tex_fetches = 0;   ///< Texture-path fetches.
  unsigned global_reads = 0;  ///< Global-memory reads.
  unsigned writes = 0;        ///< Output writes (either path).
  unsigned clause_count = 0;
};

/// A compiled kernel.
struct Program {
  std::string name;
  il::Signature sig;
  std::vector<Clause> clauses;
  /// Data GPRs used (the paper's register-usage metric; determines
  /// occupancy). Excludes the fixed coordinate register R0, matching how
  /// the paper counts Fig. 2 ("three inputs ... three GPRs").
  unsigned gpr_count = 0;
  StaticStats stats;
};

/// Renders the program in the flavour of the paper's Fig. 2 disassembly:
///   00 TEX: CNT(3) VALID_PIX
///        0  SAMPLE R1, R0.xyxx, t0, s0
///   01 ALU: CNT(88)
///        8  x: ADD ____, R1.x, R2.x
///   02 EXP_DONE: PIX0, R4
///   END_OF_PROGRAM
std::string Disassemble(const Program& program);

}  // namespace amdmb::isa
