// VLIW bundle formation for ALU instruction runs.
//
// The thread processor has four general cores (x, y, z, w) and one
// transcendental core (t); independent ALU ops co-issue in one bundle.
// A float4 operation occupies the four general lanes as one unit, so a
// data-dependent chain produces exactly one bundle per IL op for *both*
// float and float4 — the property the paper's generators rely on to keep
// ALU cycle counts independent of the data type (Sec. III).
//
// Packing is in-order greedy (no reordering), matching how close the
// paper keeps its IL to the final ISA.
#pragma once

#include <vector>

#include "compiler/depgraph.hpp"
#include "il/il.hpp"

namespace amdmb::compiler {

/// Indices into the IL code of the ops co-issued in one VLIW bundle.
using ProtoBundle = std::vector<unsigned>;

struct PackOptions {
  unsigned general_lanes = 4;  ///< x, y, z, w.
  bool has_trans_lane = true;  ///< t core present.
};

/// Packs the ALU run `alu_il_indices` (ascending IL indices) into bundles.
/// An op joins the current bundle only if no operand is defined by an op
/// already in that bundle and a suitable lane is free. Transcendental ops
/// require the t lane; general ops prefer general lanes but may use the t
/// lane when the general lanes are full (the t core also executes basic
/// ops, Sec. II-A).
std::vector<ProtoBundle> PackVliw(const il::Kernel& kernel,
                                  const DepGraph& deps,
                                  const std::vector<unsigned>& alu_il_indices,
                                  const PackOptions& opts = {});

}  // namespace amdmb::compiler
