// Register allocation over lowered clauses.
//
// Storage classes in priority order (paper Sec. III):
//  * PV       — value produced by the immediately preceding bundle and
//               consumed only there; costs no GPR. "Special 'previous'
//               registers allow data dependency between ALU operations
//               without having to occupy a global purpose register."
//  * Temp Tn  — value whose whole live range stays inside one ALU clause;
//               drawn from the small clause-temporary pool (max two per
//               odd/even slot => four). "They do not hold their value
//               across clauses."
//  * GPR Rn   — everything else: fetch results, values crossing clause
//               boundaries, and output values awaiting the write clause.
//               The peak number of simultaneously live GPR values is the
//               kernel's register usage, which determines occupancy.
#pragma once

#include <vector>

#include "compiler/clause_builder.hpp"
#include "compiler/depgraph.hpp"

namespace amdmb::compiler {

struct Allocation {
  /// Storage of each virtual register (indexed by vreg id).
  std::vector<isa::PhysOperand> location;
  /// Peak simultaneously-live GPRs (the paper's register-usage metric).
  unsigned gpr_count = 0;
};

Allocation Allocate(const il::Kernel& kernel, const DepGraph& deps,
                    const std::vector<LoweredClause>& clauses,
                    const CompileOptions& opts);

}  // namespace amdmb::compiler
