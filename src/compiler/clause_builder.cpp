#include "compiler/clause_builder.hpp"

#include "common/status.hpp"
#include "compiler/vliw_packer.hpp"

namespace amdmb::compiler {

namespace {

isa::ClauseType FetchClauseType(const il::Kernel& kernel) {
  return kernel.sig.read_path == ReadPath::kTexture ? isa::ClauseType::kTex
                                                    : isa::ClauseType::kMemRead;
}

isa::ClauseType WriteClauseType(const il::Kernel& kernel) {
  return kernel.sig.write_path == WritePath::kStream
             ? isa::ClauseType::kExport
             : isa::ClauseType::kMemWrite;
}

}  // namespace

std::vector<LoweredClause> BuildClauses(const il::Kernel& kernel,
                                        const DepGraph& deps,
                                        const CompileOptions& opts) {
  Require(opts.max_tex_fetches_per_clause > 0 &&
              opts.max_alu_bundles_per_clause > 0,
          "BuildClauses: clause capacity limits must be positive");

  std::vector<LoweredClause> clauses;

  // Collect maximal same-kind runs in program order.
  std::size_t i = 0;
  const auto& code = kernel.code;
  while (i < code.size()) {
    if (il::IsFetch(code[i].op)) {
      LoweredClause clause{FetchClauseType(kernel), {}};
      while (i < code.size() && il::IsFetch(code[i].op)) {
        if (clause.slots.size() == opts.max_tex_fetches_per_clause) {
          clauses.push_back(std::move(clause));
          clause = LoweredClause{FetchClauseType(kernel), {}};
        }
        clause.slots.push_back(
            {LoweredSlot::Kind::kFetch, {static_cast<unsigned>(i)}});
        ++i;
      }
      clauses.push_back(std::move(clause));
    } else if (il::IsMeta(code[i].op)) {
      ++i;  // Clause break: the run collectors already stopped here.
    } else if (il::IsAlu(code[i].op)) {
      std::vector<unsigned> run;
      while (i < code.size() && il::IsAlu(code[i].op)) {
        run.push_back(static_cast<unsigned>(i));
        ++i;
      }
      const std::vector<ProtoBundle> bundles =
          PackVliw(kernel, deps, run, opts.pack);
      LoweredClause clause{isa::ClauseType::kAlu, {}};
      for (const ProtoBundle& b : bundles) {
        if (clause.slots.size() == opts.max_alu_bundles_per_clause) {
          clauses.push_back(std::move(clause));
          clause = LoweredClause{isa::ClauseType::kAlu, {}};
        }
        clause.slots.push_back({LoweredSlot::Kind::kBundle, b});
      }
      clauses.push_back(std::move(clause));
    } else {
      Check(il::IsWrite(code[i].op), "BuildClauses: unknown op class");
      LoweredClause clause{WriteClauseType(kernel), {}};
      while (i < code.size() && il::IsWrite(code[i].op)) {
        clause.slots.push_back(
            {LoweredSlot::Kind::kWrite, {static_cast<unsigned>(i)}});
        ++i;
      }
      clauses.push_back(std::move(clause));
    }
  }
  return clauses;
}

}  // namespace amdmb::compiler
