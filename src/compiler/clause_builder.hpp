// Clause formation: partitions an IL kernel into TEX / memory / ALU /
// export clauses in program order, honoring per-clause capacity limits,
// and runs VLIW packing inside ALU runs.
//
// The result ("lowered clauses") still references IL instruction indices;
// register allocation and ISA emission happen afterwards in compiler.cpp.
#pragma once

#include <vector>

#include "compiler/depgraph.hpp"
#include "compiler/isa.hpp"
#include "compiler/vliw_packer.hpp"
#include "il/il.hpp"

namespace amdmb::compiler {

/// Limits and machine shape the lowering honours; defaults match R700.
struct CompileOptions {
  unsigned max_tex_fetches_per_clause = 16;
  unsigned max_alu_bundles_per_clause = 128;
  /// Clause-temporary registers available (two per odd/even slot).
  unsigned clause_temps = 4;
  PackOptions pack;
};

/// One scheduling slot inside a lowered clause: a single fetch, a VLIW
/// bundle, or a single write. Slots are the positions register allocation
/// measures liveness over.
struct LoweredSlot {
  enum class Kind { kFetch, kBundle, kWrite } kind = Kind::kBundle;
  std::vector<unsigned> il_ops;  ///< 1 op for fetch/write; 1..5 for bundle.
};

struct LoweredClause {
  isa::ClauseType type = isa::ClauseType::kAlu;
  std::vector<LoweredSlot> slots;
};

/// Splits the kernel into clauses at fetch/ALU/write transitions and at
/// capacity limits. Fetch and write runs keep one slot per instruction;
/// ALU runs are packed into bundles first.
std::vector<LoweredClause> BuildClauses(const il::Kernel& kernel,
                                        const DepGraph& deps,
                                        const CompileOptions& opts);

}  // namespace amdmb::compiler
