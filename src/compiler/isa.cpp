#include "compiler/isa.hpp"

#include <array>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/status.hpp"

namespace amdmb::isa {

std::string_view ToString(ClauseType t) {
  switch (t) {
    case ClauseType::kTex: return "TEX";
    case ClauseType::kMemRead: return "MEM_RD";
    case ClauseType::kAlu: return "ALU";
    case ClauseType::kExport: return "EXP_DONE";
    case ClauseType::kMemWrite: return "MEM_EXPORT";
  }
  throw SimError("ToString(ClauseType): unknown clause type");
}

unsigned Bundle::SlotCount() const {
  unsigned slots = 0;
  for (const auto& op : ops) slots += op.vec4 ? 4u : 1u;
  return slots;
}

namespace {

constexpr std::array<char, 5> kLaneNames = {'x', 'y', 'z', 'w', 't'};

void PrintPhys(std::ostringstream& os, const PhysOperand& p) {
  switch (p.loc) {
    case Loc::kGpr: os << "R" << p.index; break;
    case Loc::kPv: os << "PV"; break;
    case Loc::kTemp: os << "T" << p.index; break;
    case Loc::kConst: os << "KC0[" << p.index << "]"; break;
    case Loc::kLiteral: os << p.literal; break;
  }
}

std::string UpperMnemonic(il::Opcode op) {
  std::string m(il::Mnemonic(op));
  for (char& c : m) c = static_cast<char>(std::toupper(c));
  return m;
}

}  // namespace

std::string Disassemble(const Program& program) {
  std::ostringstream os;
  os << "; -------- Disassembly: " << program.name << " --------\n";
  os << "; GPRs used: " << program.gpr_count << "\n";
  unsigned instr_counter = 0;
  for (std::size_t ci = 0; ci < program.clauses.size(); ++ci) {
    const Clause& clause = program.clauses[ci];
    os << std::setw(2) << std::setfill('0') << ci << std::setfill(' ') << " "
       << ToString(clause.type) << ":";
    switch (clause.type) {
      case ClauseType::kTex:
      case ClauseType::kMemRead:
        os << " CNT(" << clause.fetches.size() << ")";
        if (program.sig.write_path == WritePath::kStream) os << " VALID_PIX";
        os << "\n";
        for (const FetchInst& f : clause.fetches) {
          os << "    " << std::setw(4) << instr_counter++ << "  "
             << (clause.type == ClauseType::kTex ? "SAMPLE" : "VFETCH") << " ";
          PrintPhys(os, f.dst);
          os << ", R0.xyxx, t" << f.resource << ", s0\n";
        }
        break;
      case ClauseType::kAlu:
        os << " CNT(" << clause.bundles.size() << ")\n";
        for (const Bundle& b : clause.bundles) {
          os << "    " << std::setw(4) << instr_counter++ << "  ";
          bool first = true;
          for (const MicroOp& op : b.ops) {
            if (!first) os << "\n          ";
            first = false;
            if (op.vec4) {
              os << "xyzw: ";
            } else {
              os << kLaneNames[op.lane] << ": ";
            }
            os << UpperMnemonic(op.op) << " ";
            PrintPhys(os, op.dst);
            for (const PhysOperand& s : op.srcs) {
              os << ", ";
              PrintPhys(os, s);
            }
          }
          os << "\n";
        }
        break;
      case ClauseType::kExport:
      case ClauseType::kMemWrite:
        os << " CNT(" << clause.writes.size() << ")\n";
        for (const WriteInst& w : clause.writes) {
          os << "    " << std::setw(4) << instr_counter++ << "  "
             << (clause.type == ClauseType::kExport ? "PIX" : "UAV") << w.resource
             << ", ";
          PrintPhys(os, w.src);
          os << "\n";
        }
        break;
    }
  }
  os << "END_OF_PROGRAM\n";
  return os.str();
}

}  // namespace amdmb::isa
