#include "compiler/regalloc.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/status.hpp"

namespace amdmb::compiler {

namespace {

struct VregInfo {
  unsigned vreg = 0;
  unsigned def_pos = 0;
  unsigned last_use_pos = 0;
  unsigned def_clause = 0;
  unsigned last_use_clause = 0;
  bool def_is_bundle = false;
  bool pv_eligible = false;   ///< All uses in the very next bundle slot.
  bool temp_eligible = false; ///< All uses inside the defining ALU clause.
};

}  // namespace

Allocation Allocate(const il::Kernel& kernel, const DepGraph& deps,
                    const std::vector<LoweredClause>& clauses,
                    const CompileOptions& opts) {
  // Global slot positions and the location of each IL instruction.
  struct SlotRef {
    unsigned clause = 0;
    LoweredSlot::Kind kind = LoweredSlot::Kind::kBundle;
  };
  std::vector<SlotRef> slot_refs;                  // position -> info
  std::vector<unsigned> il_to_pos(kernel.code.size(), 0);
  std::vector<unsigned> il_to_clause(kernel.code.size(), 0);
  for (unsigned ci = 0; ci < clauses.size(); ++ci) {
    for (const LoweredSlot& slot : clauses[ci].slots) {
      const auto pos = static_cast<unsigned>(slot_refs.size());
      slot_refs.push_back({ci, slot.kind});
      for (unsigned il_idx : slot.il_ops) {
        il_to_pos[il_idx] = pos;
        il_to_clause[il_idx] = ci;
      }
    }
  }

  // Classify every virtual register.
  std::vector<VregInfo> infos;
  infos.reserve(deps.VirtualRegCount());
  for (unsigned v = 0; v < deps.VirtualRegCount(); ++v) {
    const unsigned def_il = deps.DefSite(v);
    if (def_il == DepGraph::kNoDef) continue;
    VregInfo info;
    info.vreg = v;
    info.def_pos = il_to_pos[def_il];
    info.def_clause = il_to_clause[def_il];
    info.def_is_bundle =
        slot_refs[info.def_pos].kind == LoweredSlot::Kind::kBundle;
    info.last_use_pos = info.def_pos;
    info.last_use_clause = info.def_clause;

    const auto& uses = deps.UseSites(v);
    bool all_next_bundle = info.def_is_bundle && !uses.empty();
    bool all_same_clause = info.def_is_bundle && !uses.empty();
    for (unsigned use_il : uses) {
      const unsigned use_pos = il_to_pos[use_il];
      const unsigned use_clause = il_to_clause[use_il];
      info.last_use_pos = std::max(info.last_use_pos, use_pos);
      info.last_use_clause = std::max(info.last_use_clause, use_clause);
      if (use_pos != info.def_pos + 1 ||
          slot_refs[use_pos].kind != LoweredSlot::Kind::kBundle ||
          use_clause != info.def_clause) {
        all_next_bundle = false;
      }
      if (use_clause != info.def_clause ||
          slot_refs[use_pos].kind != LoweredSlot::Kind::kBundle) {
        all_same_clause = false;
      }
    }
    info.pv_eligible = all_next_bundle;
    info.temp_eligible = all_same_clause;
    infos.push_back(info);
  }

  Allocation alloc;
  alloc.location.assign(deps.VirtualRegCount(),
                        isa::PhysOperand{isa::Loc::kGpr, 0, 0.0f});

  // Clause-temporary assignment: per clause, linear scan over the limited
  // temp pool; candidates that do not fit fall through to GPRs.
  struct ActiveTemp {
    unsigned last_use_pos;
    unsigned temp_index;
  };
  std::map<unsigned, std::vector<const VregInfo*>> temp_candidates;
  for (const VregInfo& info : infos) {
    if (info.pv_eligible) {
      alloc.location[info.vreg] = {isa::Loc::kPv, 0, 0.0f};
    } else if (info.temp_eligible && opts.clause_temps > 0) {
      temp_candidates[info.def_clause].push_back(&info);
    }
  }
  std::set<unsigned> gpr_needed;  // vregs requiring a GPR
  for (auto& [clause, candidates] : temp_candidates) {
    std::sort(candidates.begin(), candidates.end(),
              [](const VregInfo* a, const VregInfo* b) {
                return a->def_pos < b->def_pos;
              });
    std::vector<ActiveTemp> active;
    std::set<unsigned> free_temps;
    for (unsigned t = 0; t < opts.clause_temps; ++t) free_temps.insert(t);
    for (const VregInfo* info : candidates) {
      std::erase_if(active, [&](const ActiveTemp& a) {
        if (a.last_use_pos < info->def_pos) {
          free_temps.insert(a.temp_index);
          return true;
        }
        return false;
      });
      if (free_temps.empty()) {
        gpr_needed.insert(info->vreg);
        continue;
      }
      const unsigned t = *free_temps.begin();
      free_temps.erase(free_temps.begin());
      active.push_back({info->last_use_pos, t});
      alloc.location[info->vreg] = {isa::Loc::kTemp, t, 0.0f};
    }
  }

  // GPR linear scan over global positions.
  struct Interval {
    unsigned def_pos;
    unsigned last_use_pos;
    unsigned vreg;
  };
  std::vector<Interval> intervals;
  for (const VregInfo& info : infos) {
    const isa::PhysOperand& loc = alloc.location[info.vreg];
    const bool already_placed =
        (loc.loc == isa::Loc::kPv || loc.loc == isa::Loc::kTemp) &&
        !gpr_needed.contains(info.vreg);
    if ((info.pv_eligible || info.temp_eligible) && already_placed) continue;
    intervals.push_back({info.def_pos, info.last_use_pos, info.vreg});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.def_pos < b.def_pos;
            });

  struct ActiveGpr {
    unsigned last_use_pos;
    unsigned gpr;
  };
  std::vector<ActiveGpr> active;
  std::set<unsigned> free_gprs;
  unsigned next_gpr = 0;
  for (const Interval& iv : intervals) {
    std::erase_if(active, [&](const ActiveGpr& a) {
      if (a.last_use_pos < iv.def_pos) {
        free_gprs.insert(a.gpr);
        return true;
      }
      return false;
    });
    unsigned g;
    if (!free_gprs.empty()) {
      g = *free_gprs.begin();
      free_gprs.erase(free_gprs.begin());
    } else {
      g = next_gpr++;
    }
    active.push_back({iv.last_use_pos, g});
    alloc.location[iv.vreg] = {isa::Loc::kGpr, g, 0.0f};
  }
  alloc.gpr_count = next_gpr;
  Check(alloc.gpr_count <= 256,
        "Allocate: kernel exceeds the 256-GPR per-thread budget");
  return alloc;
}

}  // namespace amdmb::compiler
