// Registry of the paper's numbered figures as runnable definitions.
//
// Each bench binary used to own its figure inline: the metadata, the
// per-curve sweep code, and the findings wiring lived in one lambda per
// google-benchmark. That made a figure callable only by forking the
// binary. This registry is the single source of truth instead: a
// FigureDef carries the metadata plus one CurveDef per paper curve, the
// bench binaries register their google-benchmarks from it
// (bench::RunRegistryBenchMain), and the amdmb_serve daemon runs the
// very same definitions for sweep requests — so a served figure
// document is byte-identical to the one the standalone binary writes.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "adapt/refiner.hpp"
#include "exec/run_report.hpp"
#include "exec/sweep_executor.hpp"
#include "il/il.hpp"
#include "report/record.hpp"
#include "sim/gpu.hpp"

namespace amdmb::suite::figures {

/// How to run a figure build. The bench binaries pass the environment
/// snapshot (quick = AMDMB_QUICK, process interrupt token); the serve
/// daemon passes the request's quick flag and its own cancellation.
struct RunOptions {
  bool quick = false;
  /// Sweep executor for every curve (null = process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Cooperative cancellation for every curve's sweep (may be null).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null runs every curve's sweep adaptively (coarse pass +
  /// bisection, adapt::Refiner) instead of densely. Reflected in
  /// `figure.meta.adaptive`.
  const adapt::Settings* adaptive = nullptr;
};

/// One curve of a figure. `run` executes the sweep, appends the curve's
/// series / findings / degradations / profiles to the figure record,
/// and returns the simulated seconds the bench binary reports as its
/// "sim_seconds" counter (the last successful point's time, 0.0 when
/// the sweep produced no points).
struct CurveDef {
  std::string name;  ///< Benchmark-name suffix ("4870 Pixel Float").
  std::function<double(report::Figure&, const RunOptions&)> run;
};

/// One reproducible figure of the paper.
struct FigureDef {
  std::string slug;          ///< Canonical slug ("fig_7"), = FigureSlug(id).
  std::string bench_prefix;  ///< google-benchmark prefix ("Fig07").
  std::string id;            ///< "Fig. 7 — ALU:Fetch Ratio for 16 Inputs".
  std::string title;
  std::string x_label;
  std::string y_label;
  std::string paper_claim;
  std::string what;  ///< One-line description for listings.
  std::vector<CurveDef> curves;
};

/// Every registered figure, in paper order. Figs. 7-17 (Fig. 15 splits
/// into 15a/15b, one per shader mode, exactly as the bench binary
/// emits them).
const std::vector<FigureDef>& Registry();

/// Slug normalization for lookups: lower-cases, drops every
/// non-alphanumeric character, and strips leading zeros from digit runs
/// so "fig07", "fig_7", "Fig7" all name the same figure.
std::string NormalizeSlug(std::string_view name);

/// Finds a figure by (normalized) slug; nullptr when unknown.
const FigureDef* Find(std::string_view name);

/// Called after each curve completes: (curve index, curve count, curve
/// name, the figure record built so far).
using CurveCallback = std::function<void(
    std::size_t, std::size_t, const std::string&, const report::Figure&)>;

/// Runs every curve of `def` in order and returns the finalized figure
/// record — the exact record the bench binary's sinks would print.
/// `figure.meta.quick` reflects opts.quick (the request scale), not the
/// process environment.
report::Figure Build(const FigureDef& def, const RunOptions& opts,
                     const CurveCallback& on_curve = {});

/// Converts every non-ok point of `run` into a typed Degradation on the
/// record, attributed to `curve`.
void NoteFaults(report::Figure& figure, const std::string& curve,
                const exec::RunReport& run);

/// One representative operating point of a registry figure: the exact
/// generated kernel, architecture, and launch the figure's sweep
/// measures there. The kerncap cross-validation test prints the
/// kernel's IL, re-ingests it through the untrusted-input intake, and
/// measures at this launch — the result must match the registry path
/// bit-for-bit (KernelStats operator==), bottleneck verdict included.
struct CrossCheckPoint {
  std::string figure;  ///< Registry slug ("fig_7").
  std::string curve;   ///< CurveKey name ("4870 Pixel Float").
  std::string point;   ///< Sweep point label ("alufetch_r0.25").
  il::Kernel kernel;
  GpuArch arch;
  sim::LaunchConfig config;
};

/// Quick-scale (256x256 domain) operating points covering every
/// registry figure family across its architectures and shader modes.
std::vector<CrossCheckPoint> CrossCheckPoints();

/// Converts every profiled point of a sweep into a typed ProfileEntry
/// on the record. A no-op when profiling was off.
template <typename Points>
void NoteProfiles(report::Figure& figure, const std::string& curve,
                  const Points& points) {
  for (const auto& point : points) {
    if (point.m.profile == nullptr) continue;
    figure.profiles.push_back(report::MakeProfileEntry(
        curve, *point.m.profile, sim::ToString(point.m.stats.bottleneck)));
  }
}

}  // namespace amdmb::suite::figures
