#include "suite/write_latency.hpp"

#include "common/status.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {

WriteLatencyResult RunWriteLatency(const Runner& runner, ShaderMode mode,
                                   DataType type,
                                   const WriteLatencyConfig& config) {
  Require(config.min_outputs >= 1 &&
              config.max_outputs >= config.min_outputs,
          "WriteLatency: invalid output sweep");
  Require(config.max_outputs <= config.inputs,
          "WriteLatency: the paper keeps outputs below the input size so "
          "GPR usage stays pinned by the inputs");
  WriteLatencyResult result;

  sim::LaunchConfig launch;
  launch.domain = config.domain;
  launch.mode = mode;
  launch.block = config.block;
  launch.repetitions = config.repetitions;
  launch.profile = config.profile;
  const WritePath write =
      mode == ShaderMode::kCompute ? WritePath::kGlobal : config.write_path;

  const std::size_t count = config.max_outputs - config.min_outputs + 1;
  const auto measure_point = [&](std::size_t i, unsigned attempt) {
    const unsigned outputs = config.min_outputs + static_cast<unsigned>(i);
    GenericSpec spec;
    spec.inputs = config.inputs;
    spec.outputs = outputs;
    spec.alu_ops = config.alu_ops;
    spec.type = type;
    spec.read_path = ReadPath::kTexture;
    spec.write_path = write;
    spec.name = "writelat_out" + std::to_string(outputs);
    WriteLatencyPoint point;
    point.outputs = outputs;
    point.m =
        runner.Measure(GenerateGeneric(spec), launch, {spec.name, attempt});
    return point;
  };

  if (config.adaptive != nullptr) {
    std::vector<std::optional<WriteLatencyPoint>> slots(count);
    const adapt::Refiner refiner(*config.adaptive, config.executor,
                                 config.retry, config.cancel);
    adapt::Outcome outcome = refiner.Run(
        count,
        [&](std::size_t i) {
          return static_cast<double>(config.min_outputs + i);
        },
        [&](std::size_t i, unsigned attempt) {
          WriteLatencyPoint point = measure_point(i, attempt);
          std::string label(sim::ToString(point.m.stats.bottleneck));
          slots[i] = std::move(point);
          return label;
        },
        &result.report);
    for (exec::PointOutcome& point : result.report.points) {
      point.label =
          "writelat_out" +
          std::to_string(config.min_outputs +
                         static_cast<unsigned>(point.index));
    }
    for (std::optional<WriteLatencyPoint>& slot : slots) {
      if (slot) result.points.push_back(std::move(*slot));
    }
    result.adaptive = std::move(outcome);
  } else {
    auto slots = exec::ExecutorOrDefault(config.executor)
                     .MapWithPolicy(
                         count,
                         [&](std::size_t i, unsigned attempt) {
                           return measure_point(i, attempt);
                         },
                         config.retry, &result.report, config.cancel);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      result.report.points[i].label =
          "writelat_out" +
          std::to_string(config.min_outputs + static_cast<unsigned>(i));
      if (slots[i]) result.points.push_back(std::move(*slots[i]));
    }
  }

  std::vector<double> xs;
  std::vector<double> ys;
  for (const WriteLatencyPoint& point : result.points) {
    xs.push_back(point.outputs);
    ys.push_back(point.m.seconds);
  }
  result.fit = FitLine(xs, ys);
  return result;
}

SeriesSet WriteLatencyFigure(const std::vector<CurveKey>& curves,
                             const WriteLatencyConfig& config,
                             const std::string& title) {
  SeriesSet figure(title, "Number of Outputs", "Time in seconds");
  for (const CurveKey& key : curves) {
    Runner runner(key.arch);
    const WriteLatencyResult result =
        RunWriteLatency(runner, key.mode, key.type, config);
    Series& series = figure.Get(key.Name());
    for (const WriteLatencyPoint& p : result.points) {
      series.Add(p.outputs, p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const WriteLatencyResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings{
      {report::FindingKind::kSlope, curve, "seconds_per_output",
       result.fit.slope, "s/output", ""},
      {report::FindingKind::kRatio, curve, "fit_r2", result.fit.r2, "", ""}};
  if (result.adaptive.has_value()) {
    // Adaptive-only: dense documents must stay byte-identical.
    const auto extra =
        adapt::AdaptiveFindings(*result.adaptive, curve, "outputs");
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  return findings;
}

}  // namespace amdmb::suite
