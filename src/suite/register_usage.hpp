// Register-usage micro-benchmark (paper Sec. III-E / IV-E, Figs. 16-17)
// and its clause-usage control (Fig. 5).
//
// Sweeps the `step` parameter of the Fig. 6 generator: more late TEX
// clauses mean fewer inputs sampled up front, fewer peak GPRs, and more
// simultaneous wavefronts — which hide fetch latency until the kernel
// goes ALU-bound and the curve levels off. The control kernel keeps the
// identical ALU segmentation but samples everything up front, so its GPR
// count (and hence its runtime) stays constant — proving the benefit
// comes from register pressure, not from moving ALU ops across clauses.
#pragma once

#include <optional>
#include <vector>

#include "adapt/refiner.hpp"
#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/kernelgen.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct RegisterUsageConfig {
  unsigned inputs = 64;
  unsigned space = 8;
  unsigned min_step = 0;
  unsigned max_step = 7;
  double alu_fetch_ratio = 4.0;
  /// The paper does not state the Fig. 16 domain; 512x512 reproduces the
  /// published magnitudes (documented in EXPERIMENTS.md).
  Domain domain{512, 512};
  BlockShape block{64, 1};
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  bool clause_control = false;  ///< true -> the Fig. 5 control kernel.
  /// Sweep points run through this executor (null = the process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null switches the sweep to adaptive refinement (adapt::Refiner).
  const adapt::Settings* adaptive = nullptr;
};

struct RegisterUsagePoint {
  unsigned step = 0;
  unsigned gpr_count = 0;  ///< Compiled register usage (figure x-axis).
  Measurement m;
};

struct RegisterUsageResult {
  std::vector<RegisterUsagePoint> points;  ///< Successful points only.
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
  /// Refinement record; present only when the sweep ran adaptively.
  std::optional<adapt::Outcome> adaptive;
};

RegisterUsageResult RunRegisterUsage(const Runner& runner, ShaderMode mode,
                                     DataType type,
                                     const RegisterUsageConfig& config);

/// Typed findings of one register-pressure sweep, attributed to `curve`:
/// the GPR/time endpoints ("gpr_max", "gpr_max_seconds", "gpr_min",
/// "gpr_min_seconds") and the "register_speedup" ratio between them.
/// Empty when the sweep produced no points.
std::vector<report::Finding> Findings(const RegisterUsageResult& result,
                                      const std::string& curve);

/// Typed finding of a clause-control sweep (clause_control = true):
/// "level_variation", the (max - min) / max spread of the pinned-GPR
/// control's times — flat (< 0.2) when the Fig. 16 speedup really comes
/// from register pressure. Empty when the sweep produced no points.
std::vector<report::Finding> ControlFindings(
    const RegisterUsageResult& control, const std::string& curve);

SeriesSet RegisterUsageFigure(const std::vector<CurveKey>& curves,
                              const RegisterUsageConfig& config,
                              const std::string& title);

}  // namespace amdmb::suite
