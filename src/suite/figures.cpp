// The figure registry: every numbered paper figure as data + code.
//
// Each Make* function below is the former bench binary's Register()
// body, lifted verbatim: same curve order, same config shapes, same
// findings — so a registry build is byte-identical (through BenchJson)
// to what the standalone binary writes. Quick scale comes from
// RunOptions instead of the AMDMB_QUICK snapshot so the serve daemon
// can honor a request's quick flag without re-exec'ing.
#include "suite/figures.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/table.hpp"
#include "suite/suite.hpp"

namespace amdmb::suite::figures {

namespace {

void Append(report::Figure& figure, std::vector<report::Finding> findings) {
  for (report::Finding& f : findings) {
    figure.findings.push_back(std::move(f));
  }
}

AluFetchConfig QuickAluFetch(const RunOptions& opts) {
  AluFetchConfig config;
  if (opts.quick) {
    config.domain = Domain{256, 256};
    config.ratio_step = 1.0;
  }
  config.executor = opts.executor;
  config.cancel = opts.cancel;
  config.adaptive = opts.adaptive;
  return config;
}

FigureDef MakeFig7() {
  FigureDef def;
  def.slug = "fig_7";
  def.bench_prefix = "Fig07";
  def.id = "Fig. 7 — ALU:Fetch Ratio for 16 Inputs";
  def.title = "ALU:Fetch Ratio";
  def.x_label = "ALU:Fetch Ratio";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Pixel float goes ALU-bound at ~1.25, pixel float4 at ~5.0 "
      "(RV670/RV770) and ~9 on RV870; naive 64x1 compute crosses later "
      "(float) and much later (float4); float/float4 converge once "
      "ALU-bound.";
  def.what = "ALU:fetch ratio sweep, texture reads, 64x1 blocks";
  for (const CurveKey& key : PaperCurves()) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           const AluFetchConfig config = QuickAluFetch(opts);
           Runner runner(key.arch);
           const AluFetchResult r =
               RunAluFetch(runner, key.mode, key.type, config);
           Series& series = fig.set.Get(key.Name());
           for (const AluFetchPoint& p : r.points) {
             series.Add(p.ratio, p.m.seconds);
           }
           NoteFaults(fig, key.Name(), r.report);
           NoteProfiles(fig, key.Name(), r.points);
           if (r.points.empty()) return 0.0;
           Append(fig, Findings(r, key.Name()));
           return r.points.back().m.seconds;
         }});
  }
  return def;
}

FigureDef MakeFig8() {
  FigureDef def;
  def.slug = "fig_8";
  def.bench_prefix = "Fig08";
  def.id = "Fig. 8 — ALU:Fetch Ratio for 16 Inputs with Block Size of 4x16";
  def.title = "ALU:Fetch Ratio (4x16 blocks)";
  def.x_label = "ALU:Fetch Ratio";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "The 2-D 4x16 block significantly improves compute mode over the "
      "naive 64x1: ~3x on RV770 and ~4x on RV870 for float4; crossovers "
      "move close to pixel mode's.";
  def.what = "ALU:fetch ratio sweep, 4x16 compute blocks";
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/false)) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           AluFetchConfig blocked_config = QuickAluFetch(opts);
           blocked_config.block = BlockShape{4, 16};
           AluFetchConfig naive_config = QuickAluFetch(opts);
           naive_config.block = BlockShape{64, 1};
           Runner runner(key.arch);
           const AluFetchResult blocked =
               RunAluFetch(runner, key.mode, key.type, blocked_config);
           const AluFetchResult naive =
               RunAluFetch(runner, key.mode, key.type, naive_config);
           Series& series = fig.set.Get(key.Name());
           for (const AluFetchPoint& p : blocked.points) {
             series.Add(p.ratio, p.m.seconds);
           }
           NoteFaults(fig, key.Name() + " 4x16", blocked.report);
           NoteProfiles(fig, key.Name() + " 4x16", blocked.points);
           NoteFaults(fig, key.Name() + " 64x1", naive.report);
           NoteProfiles(fig, key.Name() + " 64x1", naive.points);
           if (blocked.points.empty() || naive.points.empty()) return 0.0;
           Append(fig, Findings(blocked, key.Name()));
           fig.findings.push_back(
               {report::FindingKind::kRatio, key.Name(), "block_4x16_speedup",
                naive.points.front().m.seconds /
                    blocked.points.front().m.seconds,
                "x", "4x16 over 64x1 in the fetch-bound region"});
           return blocked.points.back().m.seconds;
         }});
  }
  return def;
}

FigureDef MakeFig9() {
  FigureDef def;
  def.slug = "fig_9";
  def.bench_prefix = "Fig09";
  def.id = "Fig. 9 — ALU:Fetch Ratio for 16 Inputs using Global Read";
  def.title = "ALU:Fetch Ratio (global read, stream write)";
  def.x_label = "ALU:Fetch Ratio";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "RV670's global-memory reads are very slow relative to its texture "
      "path; RV770/RV870 read global memory at or slightly above their "
      "naive compute texture-fetch speed.";
  def.what = "ALU:fetch ratio sweep, global reads, stream writes";
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/true,
                                         /*include_compute=*/false)) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           AluFetchConfig config = QuickAluFetch(opts);
           config.read_path = ReadPath::kGlobal;
           config.write_path = WritePath::kStream;
           Runner runner(key.arch);
           const AluFetchResult r =
               RunAluFetch(runner, key.mode, key.type, config);
           // Texture-read counterpart for the paper's comparison.
           AluFetchConfig tex = config;
           tex.read_path = ReadPath::kTexture;
           const AluFetchResult t =
               RunAluFetch(runner, key.mode, key.type, tex);
           Series& series = fig.set.Get(key.Name());
           for (const AluFetchPoint& p : r.points) {
             series.Add(p.ratio, p.m.seconds);
           }
           NoteFaults(fig, key.Name() + " global", r.report);
           NoteProfiles(fig, key.Name() + " global", r.points);
           NoteFaults(fig, key.Name() + " texture", t.report);
           NoteProfiles(fig, key.Name() + " texture", t.points);
           if (r.points.empty() || t.points.empty()) return 0.0;
           Append(fig, Findings(r, key.Name()));
           fig.findings.push_back(
               {report::FindingKind::kRatio, key.Name(),
                "global_vs_texture_ratio",
                r.points.front().m.seconds / t.points.front().m.seconds, "x",
                "global-read over texture-read flat-region time"});
           return r.points.back().m.seconds;
         }});
  }
  return def;
}

FigureDef MakeFig10() {
  FigureDef def;
  def.slug = "fig_10";
  def.bench_prefix = "Fig10";
  def.id =
      "Fig. 10 — ALU:Fetch Ratio for 16 Inputs using Global Read and Write";
  def.title = "ALU:Fetch Ratio (global read + global write)";
  def.x_label = "ALU:Fetch Ratio";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Little difference from Fig. 9 for RV770/RV870: with a single small "
      "output, streaming store vs global write is negligible.";
  def.what = "ALU:fetch ratio sweep, global reads and writes";
  const std::vector<GpuArch> archs = {MakeRV770(), MakeRV870()};
  for (const CurveKey& key : PaperCurves(true, true, archs)) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           AluFetchConfig global_config = QuickAluFetch(opts);
           global_config.read_path = ReadPath::kGlobal;
           global_config.write_path = WritePath::kGlobal;
           Runner runner(key.arch);
           const AluFetchResult global =
               RunAluFetch(runner, key.mode, key.type, global_config);
           Series& series = fig.set.Get(key.Name());
           for (const AluFetchPoint& p : global.points) {
             series.Add(p.ratio, p.m.seconds);
           }
           NoteFaults(fig, key.Name(), global.report);
           NoteProfiles(fig, key.Name(), global.points);
           if (global.points.empty()) return 0.0;
           Append(fig, Findings(global, key.Name()));
           if (key.mode == ShaderMode::kPixel) {
             AluFetchConfig stream_config = global_config;
             stream_config.write_path = WritePath::kStream;
             const AluFetchResult stream =
                 RunAluFetch(runner, key.mode, key.type, stream_config);
             NoteFaults(fig, key.Name() + " stream", stream.report);
             NoteProfiles(fig, key.Name() + " stream", stream.points);
             if (!stream.points.empty()) {
               fig.findings.push_back(
                   {report::FindingKind::kRatio, key.Name(),
                    "global_vs_stream_write_ratio",
                    global.points.front().m.seconds /
                        stream.points.front().m.seconds,
                    "x",
                    "global-write over stream-write in the fetch-bound "
                    "region (paper: negligible difference)"});
             }
           }
           return global.points.back().m.seconds;
         }});
  }
  return def;
}

ReadLatencyConfig QuickReadLatency(const RunOptions& opts) {
  ReadLatencyConfig config;
  if (opts.quick) config.domain = Domain{256, 256};
  config.executor = opts.executor;
  config.cancel = opts.cancel;
  config.adaptive = opts.adaptive;
  return config;
}

template <typename Result>
double ReadLatencyCurve(report::Figure& fig, const CurveKey& key,
                        const Result& r) {
  Series& series = fig.set.Get(key.Name());
  for (const ReadLatencyPoint& p : r.points) {
    series.Add(p.inputs, p.m.seconds);
  }
  NoteFaults(fig, key.Name(), r.report);
  NoteProfiles(fig, key.Name(), r.points);
  if (r.points.empty()) return 0.0;
  Append(fig, Findings(r, key.Name()));
  return r.points.back().m.seconds;
}

FigureDef MakeFig11() {
  FigureDef def;
  def.slug = "fig_11";
  def.bench_prefix = "Fig11";
  def.id = "Fig. 11 — Texture Fetch Latency";
  def.title = "Texture Fetch Latency";
  def.x_label = "Number of Inputs";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Latency is linear in the input count; n float4 fetches cost about "
      "the same as 4n float fetches; fetch times shrink with each "
      "generation; RV870 shows a cache-driven jump as inputs grow.";
  def.what = "texture-fetch read latency vs input count";
  for (const CurveKey& key : PaperCurves()) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           Runner runner(key.arch);
           return ReadLatencyCurve(
               fig, key,
               RunReadLatency(runner, key.mode, key.type,
                              QuickReadLatency(opts)));
         }});
  }
  return def;
}

FigureDef MakeFig12() {
  FigureDef def;
  def.slug = "fig_12";
  def.bench_prefix = "Fig12";
  def.id = "Fig. 12 — Global Read Latency";
  def.title = "Global Read Latency";
  def.x_label = "Number of Inputs";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Linear; dramatic improvement from RV670 to RV770/RV870; roughly the "
      "same for float and float4 and for pixel vs compute mode — the GPU "
      "is becoming more generalized with each generation.";
  def.what = "global-read latency vs input count";
  for (const CurveKey& key : PaperCurves()) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           ReadLatencyConfig config = QuickReadLatency(opts);
           config.read_path = ReadPath::kGlobal;
           Runner runner(key.arch);
           return ReadLatencyCurve(
               fig, key, RunReadLatency(runner, key.mode, key.type, config));
         }});
  }
  return def;
}

WriteLatencyConfig QuickWriteLatency(const RunOptions& opts) {
  WriteLatencyConfig config;
  if (opts.quick) config.domain = Domain{256, 256};
  config.executor = opts.executor;
  config.cancel = opts.cancel;
  config.adaptive = opts.adaptive;
  return config;
}

FigureDef MakeFig13() {
  FigureDef def;
  def.slug = "fig_13";
  def.bench_prefix = "Fig13";
  def.id = "Fig. 13 — Streaming Store Latency";
  def.title = "Streaming Store Latency";
  def.x_label = "Number of Outputs";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Linear in the output count with a flat fetch-bound region at small "
      "outputs; output vectorization yields the same or better performance "
      "(bursts absorb the extra bytes).";
  def.what = "stream-store write latency vs output count";
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/true,
                                         /*include_compute=*/false)) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           WriteLatencyConfig config = QuickWriteLatency(opts);
           config.write_path = WritePath::kStream;
           Runner runner(key.arch);
           const WriteLatencyResult r =
               RunWriteLatency(runner, key.mode, key.type, config);
           Series& series = fig.set.Get(key.Name());
           for (const WriteLatencyPoint& p : r.points) {
             series.Add(p.outputs, p.m.seconds);
           }
           NoteFaults(fig, key.Name(), r.report);
           NoteProfiles(fig, key.Name(), r.points);
           if (r.points.empty()) return 0.0;
           std::vector<report::Finding> findings = Findings(r, key.Name());
           findings.front().detail =
               "first point bottleneck " +
               std::string(
                   sim::ToString(r.points.front().m.stats.bottleneck));
           Append(fig, std::move(findings));
           return r.points.back().m.seconds;
         }});
  }
  return def;
}

FigureDef MakeFig14() {
  FigureDef def;
  def.slug = "fig_14";
  def.bench_prefix = "Fig14";
  def.id = "Fig. 14 — Global Write Latency";
  def.title = "Global Write Latency";
  def.x_label = "Number of Outputs";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Each 32-bit element writes at a constant rate: float4 takes ~4x the "
      "float time; small output counts stay fetch-bound (flat region).";
  def.what = "global-write latency vs output count";
  for (const CurveKey& key : PaperCurves()) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           WriteLatencyConfig config = QuickWriteLatency(opts);
           config.write_path = WritePath::kGlobal;
           Runner runner(key.arch);
           const WriteLatencyResult r =
               RunWriteLatency(runner, key.mode, key.type, config);
           Series& series = fig.set.Get(key.Name());
           for (const WriteLatencyPoint& p : r.points) {
             series.Add(p.outputs, p.m.seconds);
           }
           NoteFaults(fig, key.Name(), r.report);
           NoteProfiles(fig, key.Name(), r.points);
           if (r.points.empty()) return 0.0;
           std::vector<report::Finding> findings = Findings(r, key.Name());
           findings.front().detail =
               "last point bottleneck " +
               std::string(
                   sim::ToString(r.points.back().m.stats.bottleneck));
           Append(fig, std::move(findings));
           return r.points.back().m.seconds;
         }});
  }
  return def;
}

std::pair<FigureDef, FigureDef> MakeFig15() {
  FigureDef pixel;
  pixel.slug = "fig_15a";
  pixel.bench_prefix = "Fig15";
  pixel.id = "Fig. 15a — Domain Size, Pixel Shader";
  pixel.title = "Domain Size Pixel Shader";
  pixel.x_label = "Domain Size";
  pixel.y_label = "Time in seconds";
  pixel.paper_claim =
      "Time grows overall-linearly in the thread count with small local "
      "wobble (wavefront imbalance across SIMDs); a large thread count is "
      "needed to keep the GPU busy; float == float4 when ALU-bound.";
  pixel.what = "domain-size sweep, ALU-bound kernel, pixel shader";

  FigureDef compute;
  compute.slug = "fig_15b";
  compute.bench_prefix = "Fig15";
  compute.id = "Fig. 15b — Domain Size, Compute Shader";
  compute.title = "Domain Size Compute Shader";
  compute.x_label = "Domain Size";
  compute.y_label = "Time in seconds";
  compute.paper_claim =
      "Same shape as pixel mode; compute elements pad to multiples of 64.";
  compute.what = "domain-size sweep, ALU-bound kernel, compute shader";

  for (const ShaderMode mode : {ShaderMode::kPixel, ShaderMode::kCompute}) {
    FigureDef& def = mode == ShaderMode::kPixel ? pixel : compute;
    for (const GpuArch& arch : AllArchs()) {
      if (mode == ShaderMode::kCompute && !arch.supports_compute) continue;
      const CurveKey key{arch, mode, DataType::kFloat};
      const std::string label = key.Name().substr(0, key.Name().find(' '));
      def.curves.push_back(
          {std::string(ToString(mode)) + "/" + label,
           [key, label](report::Figure& fig, const RunOptions& opts) {
             DomainSizeConfig config;
             if (opts.quick) {
               config.max_size = 512;
               config.pixel_increment = 64;
             }
             config.executor = opts.executor;
             config.cancel = opts.cancel;
             config.adaptive = opts.adaptive;
             Runner runner(key.arch);
             const DomainSizeResult f =
                 RunDomainSize(runner, key.mode, DataType::kFloat, config);
             const DomainSizeResult f4 =
                 RunDomainSize(runner, key.mode, DataType::kFloat4, config);
             Series& series = fig.set.Get(label);
             for (const DomainSizePoint& p : f.points) {
               series.Add(p.size, p.m.seconds);
             }
             NoteFaults(fig, label + " float", f.report);
             NoteProfiles(fig, label + " float", f.points);
             NoteFaults(fig, label + " float4", f4.report);
             NoteProfiles(fig, label + " float4", f4.points);
             if (f.points.empty() || f4.points.empty()) return 0.0;
             Append(fig, Findings(f, label));
             fig.findings.push_back(
                 {report::FindingKind::kRatio, label,
                  "float4_float_max_domain_ratio",
                  f4.points.back().m.seconds / f.points.back().m.seconds,
                  "x", "ALU-bound => ~1.0"});
             return f.points.back().m.seconds;
           }});
    }
  }
  return {std::move(pixel), std::move(compute)};
}

RegisterUsageConfig QuickRegisterUsage(const RunOptions& opts) {
  RegisterUsageConfig config;
  if (opts.quick) config.domain = Domain{256, 256};
  config.executor = opts.executor;
  config.cancel = opts.cancel;
  config.adaptive = opts.adaptive;
  return config;
}

FigureDef MakeFig16() {
  FigureDef def;
  def.slug = "fig_16";
  def.bench_prefix = "Fig16";
  def.id = "Fig. 16 — Impact of Register Usage";
  def.title = "Register Pressure Effect";
  def.x_label = "Global Purpose Registers";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "Fewer GPRs -> more simultaneous wavefronts -> fetch latency hidden "
      "-> faster, levelling off once the kernel goes ALU-bound; RV870 "
      "benefits less (smaller cache).";
  def.what = "register-usage sweep";
  for (const CurveKey& key : PaperCurves()) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           Runner runner(key.arch);
           const RegisterUsageResult r = RunRegisterUsage(
               runner, key.mode, key.type, QuickRegisterUsage(opts));
           Series& series = fig.set.Get(key.Name());
           for (const RegisterUsagePoint& p : r.points) {
             series.Add(p.gpr_count, p.m.seconds);
           }
           NoteFaults(fig, key.Name(), r.report);
           NoteProfiles(fig, key.Name(), r.points);
           if (r.points.empty()) return 0.0;
           std::vector<report::Finding> findings = Findings(r, key.Name());
           findings.back().detail =
               "final bottleneck " +
               std::string(
                   sim::ToString(r.points.back().m.stats.bottleneck));
           Append(fig, std::move(findings));
           return r.points.back().m.seconds;
         }});
  }
  return def;
}

FigureDef MakeFig17() {
  FigureDef def;
  def.slug = "fig_17";
  def.bench_prefix = "Fig17";
  def.id = "Fig. 17 — Impact of Register Usage with Block Size of 4x16";
  def.title = "Register Pressure Effect for 4x16 Block Size";
  def.x_label = "Global Purpose Registers";
  def.y_label = "Time in seconds";
  def.paper_claim =
      "With 4x16 blocks the sweep sits below its 64x1 counterpart at every "
      "register count (better cache behaviour), even where added "
      "wavefronts erode some of the gain.";
  def.what = "register-usage sweep, 4x16 compute blocks";
  for (const CurveKey& key : PaperCurves(/*include_pixel=*/false)) {
    def.curves.push_back(
        {key.Name(), [key](report::Figure& fig, const RunOptions& opts) {
           RegisterUsageConfig blocked_config = QuickRegisterUsage(opts);
           blocked_config.block = BlockShape{4, 16};
           RegisterUsageConfig naive_config = QuickRegisterUsage(opts);
           naive_config.block = BlockShape{64, 1};
           Runner runner(key.arch);
           const RegisterUsageResult blocked = RunRegisterUsage(
               runner, key.mode, key.type, blocked_config);
           const RegisterUsageResult naive =
               RunRegisterUsage(runner, key.mode, key.type, naive_config);
           Series& series = fig.set.Get(key.Name());
           NoteFaults(fig, key.Name() + " 4x16", blocked.report);
           NoteProfiles(fig, key.Name() + " 4x16", blocked.points);
           NoteFaults(fig, key.Name() + " 64x1", naive.report);
           NoteProfiles(fig, key.Name() + " 64x1", naive.points);
           double worst_gain = 1e9;
           const std::size_t paired =
               std::min(blocked.points.size(), naive.points.size());
           for (std::size_t i = 0; i < blocked.points.size(); ++i) {
             series.Add(blocked.points[i].gpr_count,
                        blocked.points[i].m.seconds);
           }
           for (std::size_t i = 0; i < paired; ++i) {
             worst_gain =
                 std::min(worst_gain, naive.points[i].m.seconds /
                                          blocked.points[i].m.seconds);
           }
           if (blocked.points.empty()) return 0.0;
           Append(fig, Findings(blocked, key.Name()));
           if (paired > 0) {
             fig.findings.push_back(
                 {report::FindingKind::kRatio, key.Name(),
                  "block_4x16_min_gain", worst_gain, "x",
                  "minimum 64x1/4x16 time ratio across the sweep"});
           }
           return blocked.points.back().m.seconds;
         }});
  }
  return def;
}

std::vector<FigureDef> MakeRegistry() {
  std::vector<FigureDef> defs;
  defs.push_back(MakeFig7());
  defs.push_back(MakeFig8());
  defs.push_back(MakeFig9());
  defs.push_back(MakeFig10());
  defs.push_back(MakeFig11());
  defs.push_back(MakeFig12());
  defs.push_back(MakeFig13());
  defs.push_back(MakeFig14());
  auto [fig15a, fig15b] = MakeFig15();
  defs.push_back(std::move(fig15a));
  defs.push_back(std::move(fig15b));
  defs.push_back(MakeFig16());
  defs.push_back(MakeFig17());
  return defs;
}

}  // namespace

const std::vector<FigureDef>& Registry() {
  static const std::vector<FigureDef> registry = MakeRegistry();
  return registry;
}

std::string NormalizeSlug(std::string_view name) {
  std::string out;
  bool in_digits = false;
  bool digit_run_significant = false;
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isdigit(uc)) {
      if (!in_digits) {
        in_digits = true;
        digit_run_significant = false;
      }
      if (c == '0' && !digit_run_significant) continue;  // Leading zero.
      digit_run_significant = true;
      out.push_back(c);
    } else {
      if (in_digits && !digit_run_significant) {
        out.push_back('0');  // The run was all zeros: keep one.
      }
      in_digits = false;
      if (std::isalnum(uc)) {
        out.push_back(
            static_cast<char>(std::tolower(uc)));
      }
    }
  }
  if (in_digits && !digit_run_significant) out.push_back('0');
  return out;
}

const FigureDef* Find(std::string_view name) {
  const std::string key = NormalizeSlug(name);
  for (const FigureDef& def : Registry()) {
    if (NormalizeSlug(def.slug) == key) return &def;
  }
  return nullptr;
}

report::Figure Build(const FigureDef& def, const RunOptions& opts,
                     const CurveCallback& on_curve) {
  report::Figure figure(def.id, def.title, def.x_label, def.y_label,
                        def.paper_claim);
  for (std::size_t i = 0; i < def.curves.size(); ++i) {
    def.curves[i].run(figure, opts);
    if (on_curve) {
      on_curve(i, def.curves.size(), def.curves[i].name, figure);
    }
  }
  report::FinalizeMeta(figure);
  // Meta records the scale the figure actually ran at (the request's
  // quick flag), which for the bench binaries equals AMDMB_QUICK.
  figure.meta.quick = opts.quick;
  figure.meta.adaptive = opts.adaptive != nullptr;
  return figure;
}

void NoteFaults(report::Figure& figure, const std::string& curve,
                const exec::RunReport& run) {
  for (report::Degradation& d : report::DegradationsFrom(run, curve)) {
    figure.degradations.push_back(std::move(d));
  }
}

namespace {

/// The (arch, mode) combinations a cross-check family runs as. Compute
/// mode is skipped on non-compute archs, mirroring PaperCurves.
std::vector<CurveKey> CrossCheckCurves(const std::vector<GpuArch>& archs,
                                       bool pixel, bool compute) {
  std::vector<CurveKey> curves;
  for (const GpuArch& arch : archs) {
    if (pixel) curves.push_back({arch, ShaderMode::kPixel, DataType::kFloat});
    if (compute && arch.supports_compute) {
      curves.push_back({arch, ShaderMode::kCompute, DataType::kFloat});
    }
  }
  return curves;
}

sim::LaunchConfig CrossCheckLaunch(ShaderMode mode, BlockShape block) {
  sim::LaunchConfig launch;
  launch.domain = Domain{256, 256};  // The registry's quick scale.
  launch.mode = mode;
  launch.block = block;
  launch.repetitions = kPaperRepetitions;
  launch.profile = true;
  return launch;
}

}  // namespace

std::vector<CrossCheckPoint> CrossCheckPoints() {
  std::vector<CrossCheckPoint> points;
  const std::vector<GpuArch> all = AllArchs();
  const std::vector<GpuArch> ten_series = {MakeRV770(), MakeRV870()};

  const auto add = [&](const std::string& figure, const CurveKey& key,
                       const std::string& label, il::Kernel kernel,
                       BlockShape block) {
    points.push_back({figure, key.Name(), label, std::move(kernel), key.arch,
                      CrossCheckLaunch(key.mode, block)});
  };

  // ALU:fetch families (Figs. 7-10): the two sweep extremes, one firmly
  // fetch-bound and one firmly ALU-bound. Each replicates the family's
  // spec construction in alu_fetch.cpp exactly.
  const auto alu_fetch = [&](const std::string& figure,
                             const std::vector<CurveKey>& curves,
                             ReadPath read, WritePath pixel_write,
                             BlockShape block) {
    for (const CurveKey& key : curves) {
      for (const double ratio : {0.25, 8.0}) {
        GenericSpec spec;
        spec.inputs = 16;
        spec.outputs = 1;
        spec.alu_ops = AluOpsForRatio(ratio, spec.inputs);
        spec.type = key.type;
        spec.read_path = read;
        spec.write_path = key.mode == ShaderMode::kCompute
                              ? WritePath::kGlobal
                              : pixel_write;
        spec.name = "alufetch_r" + FormatDouble(ratio, 2);
        add(figure, key, spec.name, GenerateGeneric(spec), block);
      }
    }
  };
  alu_fetch("fig_7", CrossCheckCurves(all, true, true), ReadPath::kTexture,
            WritePath::kStream, BlockShape{64, 1});
  alu_fetch("fig_8", CrossCheckCurves(all, false, true), ReadPath::kTexture,
            WritePath::kStream, BlockShape{4, 16});
  alu_fetch("fig_9", CrossCheckCurves(all, true, false), ReadPath::kGlobal,
            WritePath::kStream, BlockShape{64, 1});
  alu_fetch("fig_10", CrossCheckCurves(ten_series, true, true),
            ReadPath::kGlobal, WritePath::kGlobal, BlockShape{64, 1});

  // Read-latency families (Figs. 11-12) at the paper's 16-input point;
  // construction mirrors read_latency.cpp (alu_ops = inputs - 1).
  const auto read_latency = [&](const std::string& figure,
                                const std::vector<CurveKey>& curves,
                                ReadPath read) {
    for (const CurveKey& key : curves) {
      GenericSpec spec;
      spec.inputs = 16;
      spec.outputs = 1;
      spec.alu_ops = spec.inputs - 1;
      spec.type = key.type;
      spec.read_path = read;
      spec.write_path = key.mode == ShaderMode::kCompute
                            ? WritePath::kGlobal
                            : WritePath::kStream;
      spec.name = "readlat_in" + std::to_string(spec.inputs);
      add(figure, key, spec.name, GenerateGeneric(spec), BlockShape{64, 1});
    }
  };
  read_latency("fig_11", CrossCheckCurves(all, true, true),
               ReadPath::kTexture);
  read_latency("fig_12", CrossCheckCurves(all, true, true),
               ReadPath::kGlobal);

  // Write-latency families (Figs. 13-14) at the 8-output point;
  // construction mirrors write_latency.cpp.
  const auto write_latency = [&](const std::string& figure,
                                 const std::vector<CurveKey>& curves,
                                 WritePath pixel_write) {
    for (const CurveKey& key : curves) {
      GenericSpec spec;
      spec.inputs = 8;
      spec.outputs = 8;
      spec.alu_ops = 16;
      spec.type = key.type;
      spec.read_path = ReadPath::kTexture;
      spec.write_path = key.mode == ShaderMode::kCompute
                            ? WritePath::kGlobal
                            : pixel_write;
      spec.name = "writelat_out" + std::to_string(spec.outputs);
      add(figure, key, spec.name, GenerateGeneric(spec), BlockShape{64, 1});
    }
  };
  write_latency("fig_13", CrossCheckCurves(all, true, false),
                WritePath::kStream);
  write_latency("fig_14", CrossCheckCurves(all, true, true),
                WritePath::kGlobal);

  // Domain-size family (Fig. 15) at the 256x256 point; construction
  // mirrors domain_size.cpp (one kernel, per-point launch domains).
  for (const CurveKey& key : CrossCheckCurves(all, true, true)) {
    GenericSpec spec;
    spec.inputs = 8;
    spec.outputs = 1;
    spec.alu_ops = AluOpsForRatio(10.0, spec.inputs);
    spec.type = key.type;
    spec.read_path = ReadPath::kTexture;
    spec.write_path = key.mode == ShaderMode::kCompute ? WritePath::kGlobal
                                                       : WritePath::kStream;
    spec.name = "domain_sweep";
    const std::string figure = key.mode == ShaderMode::kPixel ? "fig_15a"
                                                              : "fig_15b";
    add(figure, key, "domain_256", GenerateGeneric(spec), BlockShape{64, 1});
  }

  // Register-usage families (Figs. 16-17) at the sweep's first and a
  // late step; construction mirrors register_usage.cpp.
  const auto register_usage = [&](const std::string& figure,
                                  const std::vector<CurveKey>& curves,
                                  BlockShape block) {
    for (const CurveKey& key : curves) {
      for (const unsigned step : {0u, 6u}) {
        RegisterUsageSpec spec;
        spec.inputs = 64;
        spec.space = 8;
        spec.step = step;
        spec.alu_fetch_ratio = 4.0;
        spec.type = key.type;
        spec.read_path = ReadPath::kTexture;
        spec.write_path = key.mode == ShaderMode::kCompute
                              ? WritePath::kGlobal
                              : WritePath::kStream;
        spec.name = "regusage_s" + std::to_string(step);
        add(figure, key, spec.name, GenerateRegisterUsage(spec), block);
      }
    }
  };
  register_usage("fig_16", CrossCheckCurves(all, true, true),
                 BlockShape{64, 1});
  register_usage("fig_17", CrossCheckCurves(all, false, true),
                 BlockShape{4, 16});

  return points;
}

}  // namespace amdmb::suite::figures
