// Streaming-store / global-write latency micro-benchmark
// (paper Sec. III-C, Figs. 13-14).
//
// Sweeps the number of outputs with the input size fixed at eight —
// which pins the GPR count to the input size and keeps occupancy
// constant across the sweep — and a low constant ALU budget, so larger
// output counts become memory-bound while the smallest stay fetch-bound
// (the flat left end of Fig. 13).
#pragma once

#include <optional>
#include <vector>

#include "adapt/refiner.hpp"
#include "common/stats.hpp"
#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct WriteLatencyConfig {
  unsigned inputs = 8;
  unsigned min_outputs = 1;
  unsigned max_outputs = 8;
  unsigned alu_ops = 16;  ///< "relatively low constant value" (Sec. III-C).
  Domain domain{1024, 1024};
  BlockShape block{64, 1};
  WritePath write_path = WritePath::kStream;  ///< kGlobal for Fig. 14.
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  /// Sweep points run through this executor (null = the process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null switches the sweep to adaptive refinement (adapt::Refiner);
  /// the latency fit then uses only the refined points.
  const adapt::Settings* adaptive = nullptr;
};

struct WriteLatencyPoint {
  unsigned outputs = 0;
  Measurement m;
};

struct WriteLatencyResult {
  std::vector<WriteLatencyPoint> points;  ///< Successful points only.
  LineFit fit;  ///< seconds vs outputs.
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
  /// Refinement record; present only when the sweep ran adaptively.
  std::optional<adapt::Outcome> adaptive;
};

WriteLatencyResult RunWriteLatency(const Runner& runner, ShaderMode mode,
                                   DataType type,
                                   const WriteLatencyConfig& config);

/// Typed findings of one sweep, attributed to `curve`: the fitted
/// "seconds_per_output" slope and its "fit_r2" quality. Emitted even
/// for an empty sweep (zeros), so faulted runs stay deterministic.
std::vector<report::Finding> Findings(const WriteLatencyResult& result,
                                      const std::string& curve);

SeriesSet WriteLatencyFigure(const std::vector<CurveKey>& curves,
                             const WriteLatencyConfig& config,
                             const std::string& title);

}  // namespace amdmb::suite
