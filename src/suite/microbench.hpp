// Measurement harness shared by all micro-benchmarks: compile an IL
// kernel, launch it on the simulated GPU, and collect the timer plus the
// dynamic counters (the paper times 5000 launches per kernel, Sec. III).
#pragma once

#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "cal/cal_result.hpp"
#include "compiler/ska.hpp"
#include "exec/kernel_cache.hpp"
#include "exec/sweep_executor.hpp"
#include "il/il.hpp"
#include "prof/profile.hpp"
#include "sim/gpu.hpp"

namespace amdmb::suite {

/// Identifies one measurement for fault injection / error reporting:
/// the sweep-point name (empty = the kernel name) and the 1-based
/// attempt number the retry layer is on.
struct MeasureContext {
  std::string point;
  unsigned attempt = 1;
};

/// One measured kernel execution.
struct Measurement {
  double seconds = 0.0;  ///< Timer over all repetitions.
  sim::KernelStats stats;
  compiler::SkaReport ska;
  /// Null unless the launch was profiled (config.profile or AMDMB_PROF).
  std::shared_ptr<const prof::Profile> profile;
};

/// Compiles and runs kernels on one GPU.
///
/// Const-safe: Measure builds all launch state locally and the kernel
/// cache is internally synchronized, so one Runner may serve every
/// worker of a parallel sweep concurrently.
class Runner {
 public:
  /// Compilations go through `cache` (the process-wide shared cache by
  /// default), so sweeps that re-launch the same kernel compile it once.
  explicit Runner(const GpuArch& arch,
                  exec::KernelCache* cache = &exec::KernelCache::Shared());

  /// Measures one launch. Mirrors the CAL runtime contract: the fault
  /// injector is consulted at the compile / launch / readback
  /// boundaries (before the kernel cache, so the schedule is independent
  /// of cache state), the launch is bounded by the watchdog budget
  /// (config.watchdog_cycles, else AMDMB_WATCHDOG), and every failure
  /// surfaces as a cal::CalError carrying the stage, point, and attempt.
  /// When profiling is on (config.profile or AMDMB_PROF) a fresh
  /// prof::Collector rides the launch — Measurement::profile is filled,
  /// and with AMDMB_TRACE_DIR set the launch's Chrome trace is written
  /// there before the measurement returns.
  Measurement Measure(const il::Kernel& kernel,
                      const sim::LaunchConfig& config,
                      const MeasureContext& ctx = {}) const;

  const GpuArch& Arch() const { return gpu_.Arch(); }

 private:
  sim::Gpu gpu_;
  exec::KernelCache* cache_;
};

/// One curve of a paper figure: a GPU generation in a shader mode with a
/// data type — e.g. "4870 Pixel Float4".
struct CurveKey {
  GpuArch arch;
  ShaderMode mode = ShaderMode::kPixel;
  DataType type = DataType::kFloat;

  /// Legend label in the paper's format ("3870 Pixel Float").
  std::string Name() const;
};

/// The curves the paper plots: every GPU x mode x type combination that
/// exists (RV670 has no compute mode). `archs` defaults to all three.
std::vector<CurveKey> PaperCurves(bool include_pixel = true,
                                  bool include_compute = true,
                                  const std::vector<GpuArch>& archs = {});

/// Standard repetition count used throughout the paper.
inline constexpr unsigned kPaperRepetitions = 5000;

}  // namespace amdmb::suite
