// Measurement harness shared by all micro-benchmarks: compile an IL
// kernel, launch it on the simulated GPU, and collect the timer plus the
// dynamic counters (the paper times 5000 launches per kernel, Sec. III).
#pragma once

#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "compiler/ska.hpp"
#include "exec/kernel_cache.hpp"
#include "exec/sweep_executor.hpp"
#include "il/il.hpp"
#include "sim/gpu.hpp"

namespace amdmb::suite {

/// One measured kernel execution.
struct Measurement {
  double seconds = 0.0;  ///< Timer over all repetitions.
  sim::KernelStats stats;
  compiler::SkaReport ska;
};

/// Compiles and runs kernels on one GPU.
///
/// Const-safe: Measure builds all launch state locally and the kernel
/// cache is internally synchronized, so one Runner may serve every
/// worker of a parallel sweep concurrently.
class Runner {
 public:
  /// Compilations go through `cache` (the process-wide shared cache by
  /// default), so sweeps that re-launch the same kernel compile it once.
  explicit Runner(const GpuArch& arch,
                  exec::KernelCache* cache = &exec::KernelCache::Shared());

  Measurement Measure(const il::Kernel& kernel,
                      const sim::LaunchConfig& config) const;

  const GpuArch& Arch() const { return gpu_.Arch(); }

 private:
  sim::Gpu gpu_;
  exec::KernelCache* cache_;
};

/// One curve of a paper figure: a GPU generation in a shader mode with a
/// data type — e.g. "4870 Pixel Float4".
struct CurveKey {
  GpuArch arch;
  ShaderMode mode = ShaderMode::kPixel;
  DataType type = DataType::kFloat;

  /// Legend label in the paper's format ("3870 Pixel Float").
  std::string Name() const;
};

/// The curves the paper plots: every GPU x mode x type combination that
/// exists (RV670 has no compute mode). `archs` defaults to all three.
std::vector<CurveKey> PaperCurves(bool include_pixel = true,
                                  bool include_compute = true,
                                  const std::vector<GpuArch>& archs = {});

/// Standard repetition count used throughout the paper.
inline constexpr unsigned kPaperRepetitions = 5000;

}  // namespace amdmb::suite
