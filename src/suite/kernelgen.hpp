// Kernel generators — the code-generation half of the paper's suite.
//
// Every micro-benchmark kernel follows the paper's generic pattern
// (Fig. 3): fetch all inputs, fold them into a fully data-dependent add
// chain, keep chaining until the requested ALU-op budget is spent, and
// write the tail of the chain to the outputs. The high data dependency
// defeats VLIW packing, so the ALU cycle count is controlled exactly and
// is independent of float vs float4 (Sec. III).
//
// The register-usage micro-benchmark uses the Fig. 6 variant: only part
// of the inputs is sampled up front; the rest is sampled in `step`
// later TEX clauses of `space` fetches each, right before use, which
// lowers the peak GPR count and raises occupancy. The Fig. 5 control
// kernel keeps the identical clause structure (via explicit clause
// breaks) but samples everything up front, pinning GPR usage.
#pragma once

#include "il/il.hpp"

namespace amdmb::suite {

/// Parameters of the generic kernel (paper Fig. 3).
struct GenericSpec {
  unsigned inputs = 2;
  unsigned outputs = 1;
  unsigned constants = 0;
  unsigned alu_ops = 8;  ///< Exact ALU op budget (>= inputs - 1, >= outputs).
  DataType type = DataType::kFloat;
  ReadPath read_path = ReadPath::kTexture;
  WritePath write_path = WritePath::kStream;
  std::string name = "generic";
};

/// ALU ops for a SKA-normalised ALU:Fetch ratio (Sec. III-A: the op
/// count is inputs * 4 * ratio, mirroring the 4:1 hardware ratio).
unsigned AluOpsForRatio(double ratio, unsigned inputs);

il::Kernel GenerateGeneric(const GenericSpec& spec);

/// Parameters of the register-usage kernel (paper Fig. 6).
struct RegisterUsageSpec {
  unsigned inputs = 64;
  unsigned space = 8;  ///< Fetches per late TEX clause.
  unsigned step = 6;   ///< Number of late TEX clauses.
  double alu_fetch_ratio = 4.0;
  DataType type = DataType::kFloat;
  ReadPath read_path = ReadPath::kTexture;
  WritePath write_path = WritePath::kStream;
  std::string name = "register_usage";
};

il::Kernel GenerateRegisterUsage(const RegisterUsageSpec& spec);

/// Fig. 5 control: identical ALU segmentation (forced clause breaks at
/// the same points) but all sampling up front -> constant GPR usage.
il::Kernel GenerateClauseUsage(const RegisterUsageSpec& spec);

}  // namespace amdmb::suite
