#include "suite/domain_size.hpp"

#include "common/status.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {

DomainSizeResult RunDomainSize(const Runner& runner, ShaderMode mode,
                               DataType type, const DomainSizeConfig& config) {
  Require(config.min_size > 0 && config.max_size >= config.min_size,
          "DomainSize: invalid sweep");
  const unsigned increment = mode == ShaderMode::kPixel
                                 ? config.pixel_increment
                                 : config.compute_increment;
  Require(increment > 0, "DomainSize: increment must be positive");

  GenericSpec spec;
  spec.inputs = config.inputs;
  spec.outputs = 1;
  spec.alu_ops = AluOpsForRatio(config.alu_fetch_ratio, config.inputs);
  spec.type = type;
  spec.read_path = ReadPath::kTexture;
  spec.write_path =
      mode == ShaderMode::kCompute ? WritePath::kGlobal : WritePath::kStream;
  spec.name = "domain_sweep";
  const il::Kernel kernel = GenerateGeneric(spec);

  std::vector<unsigned> sizes;
  for (unsigned size = config.min_size; size <= config.max_size;
       size += increment) {
    sizes.push_back(size);
  }

  DomainSizeResult result;
  const auto measure_point = [&](std::size_t i, unsigned attempt) {
    sim::LaunchConfig launch;
    launch.domain = Domain{sizes[i], sizes[i]};
    launch.mode = mode;
    launch.block = config.block;
    launch.repetitions = config.repetitions;
    launch.profile = config.profile;
    DomainSizePoint point;
    point.size = sizes[i];
    point.m = runner.Measure(kernel, launch,
                             {"domain_" + std::to_string(sizes[i]), attempt});
    return point;
  };

  if (config.adaptive != nullptr) {
    std::vector<std::optional<DomainSizePoint>> slots(sizes.size());
    const adapt::Refiner refiner(*config.adaptive, config.executor,
                                 config.retry, config.cancel);
    adapt::Outcome outcome = refiner.Run(
        sizes.size(),
        [&](std::size_t i) { return static_cast<double>(sizes[i]); },
        [&](std::size_t i, unsigned attempt) {
          DomainSizePoint point = measure_point(i, attempt);
          std::string label(sim::ToString(point.m.stats.bottleneck));
          slots[i] = std::move(point);
          return label;
        },
        &result.report);
    for (exec::PointOutcome& point : result.report.points) {
      point.label = "domain_" + std::to_string(sizes[point.index]);
    }
    for (std::optional<DomainSizePoint>& slot : slots) {
      if (slot) result.points.push_back(std::move(*slot));
    }
    result.adaptive = std::move(outcome);
    return result;
  }

  auto slots = exec::ExecutorOrDefault(config.executor)
                   .MapWithPolicy(
                       sizes.size(),
                       [&](std::size_t i, unsigned attempt) {
                         return measure_point(i, attempt);
                       },
                       config.retry, &result.report, config.cancel);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.report.points[i].label = "domain_" + std::to_string(sizes[i]);
    if (slots[i]) result.points.push_back(std::move(*slots[i]));
  }
  return result;
}

SeriesSet DomainSizeFigure(ShaderMode mode, DataType type,
                           const DomainSizeConfig& config,
                           const std::string& title) {
  SeriesSet figure(title, "Domain Size", "Time in seconds");
  for (const GpuArch& arch : AllArchs()) {
    if (mode == ShaderMode::kCompute && !arch.supports_compute) continue;
    Runner runner(arch);
    const DomainSizeResult result = RunDomainSize(runner, mode, type, config);
    const CurveKey key{arch, mode, type};
    // Fig. 15 labels curves by card only.
    std::string label = key.Name();
    label = label.substr(0, label.find(' '));
    Series& series = figure.Get(label);
    for (const DomainSizePoint& p : result.points) {
      series.Add(p.size, p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const DomainSizeResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings;
  if (result.points.empty()) return findings;
  findings.push_back({report::FindingKind::kRatio, curve, "sweep_growth",
                      result.points.back().m.seconds /
                          result.points.front().m.seconds,
                      "x", ""});
  findings.push_back({report::FindingKind::kPlateau, curve,
                      "max_domain_seconds", result.points.back().m.seconds,
                      "s", ""});
  if (result.adaptive.has_value()) {
    // Adaptive-only: dense documents must stay byte-identical.
    const auto extra =
        adapt::AdaptiveFindings(*result.adaptive, curve, "size");
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  return findings;
}

}  // namespace amdmb::suite
