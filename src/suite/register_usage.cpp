#include "suite/register_usage.hpp"

#include "common/status.hpp"

namespace amdmb::suite {

RegisterUsageResult RunRegisterUsage(const Runner& runner, ShaderMode mode,
                                     DataType type,
                                     const RegisterUsageConfig& config) {
  Require(config.max_step >= config.min_step,
          "RegisterUsage: invalid step sweep");
  RegisterUsageResult result;

  sim::LaunchConfig launch;
  launch.domain = config.domain;
  launch.mode = mode;
  launch.block = config.block;
  launch.repetitions = config.repetitions;
  launch.profile = config.profile;

  const std::size_t count = config.max_step - config.min_step + 1;
  const auto measure_point = [&](std::size_t i, unsigned attempt) {
    const unsigned step = config.min_step + static_cast<unsigned>(i);
    RegisterUsageSpec spec;
    spec.inputs = config.inputs;
    spec.space = config.space;
    spec.step = step;
    spec.alu_fetch_ratio = config.alu_fetch_ratio;
    spec.type = type;
    spec.read_path = ReadPath::kTexture;
    spec.write_path = mode == ShaderMode::kCompute ? WritePath::kGlobal
                                                   : WritePath::kStream;
    spec.name = "regusage_s" + std::to_string(step);
    const il::Kernel kernel = config.clause_control
                                  ? GenerateClauseUsage(spec)
                                  : GenerateRegisterUsage(spec);
    RegisterUsagePoint point;
    point.step = step;
    point.m = runner.Measure(kernel, launch, {spec.name, attempt});
    point.gpr_count = point.m.stats.gpr_count;
    return point;
  };

  if (config.adaptive != nullptr) {
    std::vector<std::optional<RegisterUsagePoint>> slots(count);
    const adapt::Refiner refiner(*config.adaptive, config.executor,
                                 config.retry, config.cancel);
    adapt::Outcome outcome = refiner.Run(
        count,
        [&](std::size_t i) {
          return static_cast<double>(config.min_step + i);
        },
        [&](std::size_t i, unsigned attempt) {
          RegisterUsagePoint point = measure_point(i, attempt);
          std::string label(sim::ToString(point.m.stats.bottleneck));
          slots[i] = std::move(point);
          return label;
        },
        &result.report);
    for (exec::PointOutcome& point : result.report.points) {
      point.label =
          "regusage_s" +
          std::to_string(config.min_step +
                         static_cast<unsigned>(point.index));
    }
    for (std::optional<RegisterUsagePoint>& slot : slots) {
      if (slot) result.points.push_back(std::move(*slot));
    }
    result.adaptive = std::move(outcome);
    return result;
  }

  auto slots = exec::ExecutorOrDefault(config.executor)
                   .MapWithPolicy(
                       count,
                       [&](std::size_t i, unsigned attempt) {
                         return measure_point(i, attempt);
                       },
                       config.retry, &result.report, config.cancel);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.report.points[i].label =
        "regusage_s" +
        std::to_string(config.min_step + static_cast<unsigned>(i));
    if (slots[i]) result.points.push_back(std::move(*slots[i]));
  }
  return result;
}

SeriesSet RegisterUsageFigure(const std::vector<CurveKey>& curves,
                              const RegisterUsageConfig& config,
                              const std::string& title) {
  SeriesSet figure(title, "Global Purpose Registers", "Time in seconds");
  for (const CurveKey& key : curves) {
    Runner runner(key.arch);
    const RegisterUsageResult result =
        RunRegisterUsage(runner, key.mode, key.type, config);
    Series& series = figure.Get(key.Name());
    for (const RegisterUsagePoint& p : result.points) {
      series.Add(p.gpr_count, p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const RegisterUsageResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings;
  if (result.points.empty()) return findings;
  const RegisterUsagePoint& first = result.points.front();
  const RegisterUsagePoint& last = result.points.back();
  findings.push_back({report::FindingKind::kPlateau, curve, "gpr_max",
                      static_cast<double>(first.gpr_count), "GPRs", ""});
  findings.push_back({report::FindingKind::kPlateau, curve,
                      "gpr_max_seconds", first.m.seconds, "s", ""});
  findings.push_back({report::FindingKind::kPlateau, curve, "gpr_min",
                      static_cast<double>(last.gpr_count), "GPRs", ""});
  findings.push_back({report::FindingKind::kPlateau, curve,
                      "gpr_min_seconds", last.m.seconds, "s", ""});
  findings.push_back({report::FindingKind::kRatio, curve, "register_speedup",
                      first.m.seconds / last.m.seconds, "x", ""});
  if (result.adaptive.has_value()) {
    // Adaptive-only: dense documents must stay byte-identical.
    const auto extra =
        adapt::AdaptiveFindings(*result.adaptive, curve, "step");
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  return findings;
}

std::vector<report::Finding> ControlFindings(
    const RegisterUsageResult& control, const std::string& curve) {
  if (control.points.empty()) return {};
  double cmin = control.points.front().m.seconds;
  double cmax = cmin;
  for (const RegisterUsagePoint& p : control.points) {
    cmin = std::min(cmin, p.m.seconds);
    cmax = std::max(cmax, p.m.seconds);
  }
  return {{report::FindingKind::kRatio, curve, "level_variation",
           (cmax - cmin) / cmax, "",
           "pinned-GPR control spread; flat when < 0.2"}};
}

}  // namespace amdmb::suite
