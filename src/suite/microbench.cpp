#include "suite/microbench.hpp"

#include "compiler/compiler.hpp"
#include "prof/chrome_trace.hpp"
#include "prof/collector.hpp"

namespace amdmb::suite {

Runner::Runner(const GpuArch& arch, exec::KernelCache* cache)
    : gpu_(arch), cache_(cache) {}

Measurement Runner::Measure(const il::Kernel& kernel,
                            const sim::LaunchConfig& config,
                            const MeasureContext& ctx) const {
  const std::string_view point =
      ctx.point.empty() ? std::string_view(kernel.name) : ctx.point;
  // The compile boundary is checked before the cache lookup so the fault
  // schedule never depends on what some other point compiled first.
  cal::CheckInjectedFault(fault::FaultSite::kCompile, point, ctx.attempt);
  const std::shared_ptr<const isa::Program> program =
      cache_ != nullptr
          ? cache_->Compile(kernel, gpu_.Arch())
          : std::make_shared<const isa::Program>(
                compiler::Compile(kernel, gpu_.Arch()));
  cal::CheckInjectedFault(fault::FaultSite::kLaunch, point, ctx.attempt);
  cal::CheckInjectedFault(fault::FaultSite::kHang, point, ctx.attempt);
  sim::LaunchConfig bounded = config;
  if (bounded.watchdog_cycles == 0) {
    bounded.watchdog_cycles = sim::DefaultWatchdogCycles();
  }
  // A fresh collector per attempt: counters restart from zero, so the
  // retry layer can never double-count a retried point.
  std::unique_ptr<prof::Collector> collector;
  if (bounded.profile || prof::ProfilingEnabled()) {
    collector = std::make_unique<prof::Collector>(sim::DefaultTraceCapacity());
  }
  Measurement m;
  m.ska = compiler::Analyze(*program, gpu_.Arch());
  try {
    m.stats = gpu_.Execute(*program, bounded, nullptr, collector.get());
  } catch (const sim::WatchdogTimeout& e) {
    throw cal::CalError(cal::CalResult::kCalTimeout, "launch",
                        std::string(point), ctx.attempt, e.what());
  }
  cal::CheckInjectedFault(fault::FaultSite::kReadback, point, ctx.attempt);
  m.seconds = m.stats.seconds;
  if (collector != nullptr) {
    prof::Profile profile = collector->Take();
    profile.kernel = program->name;
    profile.point = std::string(point);
    profile.arch = gpu_.Arch().name;
    profile.mode = ToString(bounded.mode);
    profile.type = ToString(program->sig.type);
    profile.attempt = ctx.attempt;
    // Export before publishing: a parallel sweep writes each point's
    // trace from its own worker, and the arch/mode/type-qualified file
    // name keeps concurrent curves from colliding.
    if (const std::string dir = prof::TraceDirectory(); !dir.empty()) {
      prof::WriteChromeTrace(profile, dir);
    }
    m.profile = std::make_shared<const prof::Profile>(std::move(profile));
  }
  return m;
}

std::string CurveKey::Name() const {
  // "Radeon HD 4870" -> "4870".
  std::string card = arch.card;
  if (const auto pos = card.rfind(' '); pos != std::string::npos) {
    card = card.substr(pos + 1);
  }
  return card + " " + std::string(ToString(mode)) + " " +
         std::string(ToString(type));
}

std::vector<CurveKey> PaperCurves(bool include_pixel, bool include_compute,
                                  const std::vector<GpuArch>& archs) {
  const std::vector<GpuArch> all = archs.empty() ? AllArchs() : archs;
  std::vector<CurveKey> curves;
  for (const GpuArch& arch : all) {
    for (const ShaderMode mode : {ShaderMode::kPixel, ShaderMode::kCompute}) {
      if (mode == ShaderMode::kPixel && !include_pixel) continue;
      if (mode == ShaderMode::kCompute &&
          (!include_compute || !arch.supports_compute)) {
        continue;
      }
      for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
        curves.push_back(CurveKey{arch, mode, type});
      }
    }
  }
  return curves;
}

}  // namespace amdmb::suite
