#include "suite/microbench.hpp"

#include "compiler/compiler.hpp"

namespace amdmb::suite {

Runner::Runner(const GpuArch& arch, exec::KernelCache* cache)
    : gpu_(arch), cache_(cache) {}

Measurement Runner::Measure(const il::Kernel& kernel,
                            const sim::LaunchConfig& config) const {
  const std::shared_ptr<const isa::Program> program =
      cache_ != nullptr
          ? cache_->Compile(kernel, gpu_.Arch())
          : std::make_shared<const isa::Program>(
                compiler::Compile(kernel, gpu_.Arch()));
  Measurement m;
  m.ska = compiler::Analyze(*program, gpu_.Arch());
  m.stats = gpu_.Execute(*program, config);
  m.seconds = m.stats.seconds;
  return m;
}

std::string CurveKey::Name() const {
  // "Radeon HD 4870" -> "4870".
  std::string card = arch.card;
  if (const auto pos = card.rfind(' '); pos != std::string::npos) {
    card = card.substr(pos + 1);
  }
  return card + " " + std::string(ToString(mode)) + " " +
         std::string(ToString(type));
}

std::vector<CurveKey> PaperCurves(bool include_pixel, bool include_compute,
                                  const std::vector<GpuArch>& archs) {
  const std::vector<GpuArch> all = archs.empty() ? AllArchs() : archs;
  std::vector<CurveKey> curves;
  for (const GpuArch& arch : all) {
    for (const ShaderMode mode : {ShaderMode::kPixel, ShaderMode::kCompute}) {
      if (mode == ShaderMode::kPixel && !include_pixel) continue;
      if (mode == ShaderMode::kCompute &&
          (!include_compute || !arch.supports_compute)) {
        continue;
      }
      for (const DataType type : {DataType::kFloat, DataType::kFloat4}) {
        curves.push_back(CurveKey{arch, mode, type});
      }
    }
  }
  return curves;
}

}  // namespace amdmb::suite
