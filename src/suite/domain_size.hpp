// Domain-size micro-benchmark (paper Sec. III-D, Fig. 15).
//
// Sweeps square domains with an ALU:Fetch ratio of 10 (firmly ALU-bound),
// eight inputs and one output (constant GPRs, constant occupancy). The
// expected picture is overall-linear growth with small local wobble from
// wavefront-count imbalance across SIMD engines — the paper's evidence
// that a large thread count is needed to keep the GPU busy.
#pragma once

#include <optional>
#include <vector>

#include "adapt/refiner.hpp"
#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct DomainSizeConfig {
  unsigned min_size = 256;
  unsigned max_size = 1024;
  unsigned pixel_increment = 8;     ///< Paper: 8x8 steps in pixel mode.
  unsigned compute_increment = 64;  ///< Paper: 64x64 steps (pad to 64).
  unsigned inputs = 8;
  double alu_fetch_ratio = 10.0;
  BlockShape block{64, 1};
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  /// Sweep points run through this executor (null = the process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null switches the sweep to adaptive refinement (adapt::Refiner).
  const adapt::Settings* adaptive = nullptr;
};

struct DomainSizePoint {
  unsigned size = 0;  ///< Square domain edge.
  Measurement m;
};

struct DomainSizeResult {
  std::vector<DomainSizePoint> points;  ///< Successful points only.
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
  /// Refinement record; present only when the sweep ran adaptively.
  std::optional<adapt::Outcome> adaptive;
};

DomainSizeResult RunDomainSize(const Runner& runner, ShaderMode mode,
                               DataType type, const DomainSizeConfig& config);

/// Typed findings of one sweep, attributed to `curve`: "sweep_growth"
/// (largest over smallest domain time) and "max_domain_seconds". Empty
/// when the sweep produced no points.
std::vector<report::Finding> Findings(const DomainSizeResult& result,
                                      const std::string& curve);

/// Fig. 15a/b layout: one curve per GPU for the given mode.
SeriesSet DomainSizeFigure(ShaderMode mode, DataType type,
                           const DomainSizeConfig& config,
                           const std::string& title);

}  // namespace amdmb::suite
