// Bottleneck reporting and the optimisation advisor (paper Sec. IV).
//
// The suite's headline use: classify which of the three hardware limits
// (ALU utilisation, texture fetch, memory access) binds a kernel and
// suggest the optimisation direction the paper prescribes for each —
// e.g. ALU-bound StreamSDK samples (Binomial Option Pricing) can absorb
// extra fetches for free; fetch-bound ones (matrix multiply) want more
// ALU per fetch, fewer GPRs, or a 2-D block size; write-bound ones
// (Monte Carlo) can absorb extra ALU/fetch work.
#pragma once

#include <string>
#include <vector>

#include "suite/microbench.hpp"

namespace amdmb::suite {

struct Advice {
  sim::Bottleneck bound = sim::Bottleneck::kAlu;
  std::vector<std::string> suggestions;

  std::string Render() const;
};

/// Derives optimisation advice from a measurement (Sec. IV-A/B/C
/// guidance plus the register/cache trade-off of Sec. IV-E).
Advice Advise(const Measurement& m, ShaderMode mode, BlockShape block);

}  // namespace amdmb::suite
