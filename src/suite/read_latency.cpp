#include "suite/read_latency.hpp"

#include "common/status.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {

ReadLatencyResult RunReadLatency(const Runner& runner, ShaderMode mode,
                                 DataType type,
                                 const ReadLatencyConfig& config) {
  Require(config.min_inputs >= 2 && config.max_inputs >= config.min_inputs,
          "ReadLatency: invalid input sweep");
  ReadLatencyResult result;

  sim::LaunchConfig launch;
  launch.domain = config.domain;
  launch.mode = mode;
  launch.block = config.block;
  launch.repetitions = config.repetitions;
  launch.profile = config.profile;
  const WritePath write =
      mode == ShaderMode::kCompute ? WritePath::kGlobal : WritePath::kStream;

  const std::size_t count = config.max_inputs - config.min_inputs + 1;
  const auto measure_point = [&](std::size_t i, unsigned attempt) {
    const unsigned inputs = config.min_inputs + static_cast<unsigned>(i);
    GenericSpec spec;
    spec.inputs = inputs;
    spec.outputs = 1;
    // Sec. III-B: ALU ops fixed to inputs - 1 so the fetch stays the
    // bottleneck.
    spec.alu_ops = inputs - 1;
    spec.type = type;
    spec.read_path = config.read_path;
    spec.write_path = write;
    spec.name = "readlat_in" + std::to_string(inputs);
    ReadLatencyPoint point;
    point.inputs = inputs;
    point.m =
        runner.Measure(GenerateGeneric(spec), launch, {spec.name, attempt});
    return point;
  };

  if (config.adaptive != nullptr) {
    std::vector<std::optional<ReadLatencyPoint>> slots(count);
    const adapt::Refiner refiner(*config.adaptive, config.executor,
                                 config.retry, config.cancel);
    adapt::Outcome outcome = refiner.Run(
        count,
        [&](std::size_t i) {
          return static_cast<double>(config.min_inputs + i);
        },
        [&](std::size_t i, unsigned attempt) {
          ReadLatencyPoint point = measure_point(i, attempt);
          std::string label(sim::ToString(point.m.stats.bottleneck));
          slots[i] = std::move(point);
          return label;
        },
        &result.report);
    for (exec::PointOutcome& point : result.report.points) {
      point.label =
          "readlat_in" +
          std::to_string(config.min_inputs +
                         static_cast<unsigned>(point.index));
    }
    for (std::optional<ReadLatencyPoint>& slot : slots) {
      if (slot) result.points.push_back(std::move(*slot));
    }
    result.adaptive = std::move(outcome);
  } else {
    auto slots = exec::ExecutorOrDefault(config.executor)
                     .MapWithPolicy(
                         count,
                         [&](std::size_t i, unsigned attempt) {
                           return measure_point(i, attempt);
                         },
                         config.retry, &result.report, config.cancel);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      result.report.points[i].label =
          "readlat_in" +
          std::to_string(config.min_inputs + static_cast<unsigned>(i));
      if (slots[i]) result.points.push_back(std::move(*slots[i]));
    }
  }

  std::vector<double> xs;
  std::vector<double> ys;
  for (const ReadLatencyPoint& point : result.points) {
    xs.push_back(point.inputs);
    ys.push_back(point.m.seconds);
  }
  result.fit = FitLine(xs, ys);
  return result;
}

SeriesSet ReadLatencyFigure(const std::vector<CurveKey>& curves,
                            const ReadLatencyConfig& config,
                            const std::string& title) {
  SeriesSet figure(title, "Number of Inputs", "Time in seconds");
  for (const CurveKey& key : curves) {
    Runner runner(key.arch);
    const ReadLatencyResult result =
        RunReadLatency(runner, key.mode, key.type, config);
    Series& series = figure.Get(key.Name());
    for (const ReadLatencyPoint& p : result.points) {
      series.Add(p.inputs, p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const ReadLatencyResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings{
      {report::FindingKind::kSlope, curve, "seconds_per_input",
       result.fit.slope, "s/input", ""},
      {report::FindingKind::kRatio, curve, "fit_r2", result.fit.r2, "", ""}};
  if (result.adaptive.has_value()) {
    // Adaptive-only: dense documents must stay byte-identical.
    const auto extra =
        adapt::AdaptiveFindings(*result.adaptive, curve, "inputs");
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  return findings;
}

}  // namespace amdmb::suite
