// Texture-fetch / global-read latency micro-benchmark
// (paper Sec. III-B, Figs. 11-12).
//
// Sweeps the number of inputs with the ALU budget pinned to inputs - 1
// (just enough to fold every input) and one output, so the fetch path
// stays the bottleneck. Reports the per-input latency slope.
#pragma once

#include <optional>
#include <vector>

#include "adapt/refiner.hpp"
#include "common/stats.hpp"
#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct ReadLatencyConfig {
  unsigned min_inputs = 2;
  unsigned max_inputs = 18;
  Domain domain{1024, 1024};
  BlockShape block{64, 1};
  ReadPath read_path = ReadPath::kTexture;  ///< kGlobal for Fig. 12.
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  /// Sweep points run through this executor (null = the process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null switches the sweep to adaptive refinement (adapt::Refiner);
  /// the latency fit then uses only the refined points.
  const adapt::Settings* adaptive = nullptr;
};

struct ReadLatencyPoint {
  unsigned inputs = 0;
  Measurement m;
};

struct ReadLatencyResult {
  std::vector<ReadLatencyPoint> points;  ///< Successful points only.
  LineFit fit;  ///< seconds vs inputs.
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
  /// Refinement record; present only when the sweep ran adaptively.
  std::optional<adapt::Outcome> adaptive;
};

ReadLatencyResult RunReadLatency(const Runner& runner, ShaderMode mode,
                                 DataType type,
                                 const ReadLatencyConfig& config);

/// Typed findings of one sweep, attributed to `curve`: the fitted
/// "seconds_per_input" slope and its "fit_r2" quality. Emitted even for
/// an empty sweep (zeros), so faulted runs stay deterministic.
std::vector<report::Finding> Findings(const ReadLatencyResult& result,
                                      const std::string& curve);

SeriesSet ReadLatencyFigure(const std::vector<CurveKey>& curves,
                            const ReadLatencyConfig& config,
                            const std::string& title);

}  // namespace amdmb::suite
