#include "suite/bottleneck.hpp"

#include <sstream>

namespace amdmb::suite {

Advice Advise(const Measurement& m, ShaderMode mode, BlockShape block) {
  Advice advice;
  advice.bound = m.stats.bottleneck;
  auto add = [&](std::string s) { advice.suggestions.push_back(std::move(s)); };

  switch (m.stats.bottleneck) {
    case sim::Bottleneck::kAlu:
      add("Kernel is ALU-bound: additional fetches and/or outputs are free "
          "until the bound flips; consider merging low-arithmetic-intensity "
          "work into this kernel (Sec. IV-A).");
      if (m.ska.alu_fetch_ratio > compiler::kBalancedRatioHigh) {
        add("Static ALU:Fetch ratio " +
            std::to_string(m.ska.alu_fetch_ratio).substr(0, 4) +
            " is above the SKA balanced window [0.98, 1.09]; the GPU's "
            "fetch units are idle.");
      }
      break;
    case sim::Bottleneck::kFetch:
      add("Kernel is fetch-bound: increase ALU operations per fetch or "
          "outputs per fetch to move toward ALU-bound (Sec. IV-B).");
      if (m.stats.resident_wavefronts < 8) {
        add("Only " + std::to_string(m.stats.resident_wavefronts) +
            " wavefronts/SIMD are resident; reducing the " +
            std::to_string(m.stats.gpr_count) +
            " GPRs (e.g. sampling inputs right before use) raises occupancy "
            "and hides fetch latency (Sec. IV-E).");
      }
      if (m.stats.cache.HitRate() < 0.5) {
        add("Texture cache hit rate is " +
            std::to_string(m.stats.cache.HitRate()).substr(0, 4) +
            "; raise it by increasing elements per block or reducing "
            "simultaneous wavefronts (the paper's 'dummy register' trick).");
      }
      if (mode == ShaderMode::kCompute && block.y == 1) {
        add("Compute mode with a one-dimensional " + std::to_string(block.x) +
            "x1 block uses only half of the two-dimensional texture cache; "
            "a 2-D block such as 4x16 raises the cache hit rate "
            "(Sec. IV-A).");
      }
      break;
    case sim::Bottleneck::kMemory:
      add("Kernel is memory(write)-bound: ALU and fetch instructions can be "
          "added with no performance decrease until the bound changes "
          "(Sec. IV-C).");
      break;
  }
  return advice;
}

std::string Advice::Render() const {
  std::ostringstream os;
  os << "bottleneck: " << sim::ToString(bound) << "\n";
  for (const std::string& s : suggestions) os << "  - " << s << "\n";
  return os.str();
}

}  // namespace amdmb::suite
