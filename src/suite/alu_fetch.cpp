#include "suite/alu_fetch.hpp"

#include "common/status.hpp"
#include "common/table.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {

AluFetchResult RunAluFetch(const Runner& runner, ShaderMode mode,
                           DataType type, const AluFetchConfig& config) {
  Require(config.ratio_step > 0.0 && config.ratio_min > 0.0 &&
              config.ratio_max >= config.ratio_min,
          "AluFetch: invalid ratio sweep");
  AluFetchResult result;

  sim::LaunchConfig launch;
  launch.domain = config.domain;
  launch.mode = mode;
  launch.block = config.block;
  launch.repetitions = config.repetitions;
  launch.profile = config.profile;

  // Compute mode cannot write color buffers (Sec. IV-C).
  const WritePath write = mode == ShaderMode::kCompute ? WritePath::kGlobal
                                                       : config.write_path;

  std::vector<double> ratios;
  for (double ratio = config.ratio_min; ratio <= config.ratio_max + 1e-9;
       ratio += config.ratio_step) {
    ratios.push_back(ratio);
  }

  const auto measure_point = [&](std::size_t i, unsigned attempt) {
    const double ratio = ratios[i];
    GenericSpec spec;
    spec.inputs = config.inputs;
    spec.outputs = config.outputs;
    spec.alu_ops = AluOpsForRatio(ratio, config.inputs);
    spec.type = type;
    spec.read_path = config.read_path;
    spec.write_path = write;
    spec.name = "alufetch_r" + FormatDouble(ratio, 2);
    AluFetchPoint point;
    point.ratio = ratio;
    point.m = runner.Measure(GenerateGeneric(spec), launch,
                             {spec.name, attempt});
    return point;
  };
  const std::string alu_label(sim::ToString(sim::Bottleneck::kAlu));

  if (config.adaptive != nullptr) {
    // Adaptive path: coarse pass + bisection around bottleneck flips.
    // Waves touch distinct indices, so the slot writes never race.
    std::vector<std::optional<AluFetchPoint>> slots(ratios.size());
    const adapt::Refiner refiner(*config.adaptive, config.executor,
                                 config.retry, config.cancel);
    adapt::Outcome outcome = refiner.Run(
        ratios.size(), [&](std::size_t i) { return ratios[i]; },
        [&](std::size_t i, unsigned attempt) {
          AluFetchPoint point = measure_point(i, attempt);
          std::string label(sim::ToString(point.m.stats.bottleneck));
          slots[i] = std::move(point);
          return label;
        },
        &result.report);
    for (exec::PointOutcome& point : result.report.points) {
      point.label = "alufetch_r" + FormatDouble(ratios[point.index], 2);
    }
    for (std::optional<AluFetchPoint>& slot : slots) {
      if (slot) result.points.push_back(std::move(*slot));
    }
    if (const auto t = adapt::FirstTransitionTo(outcome.samples, alu_label)) {
      result.crossover = t->upper_x;
    }
    result.adaptive = std::move(outcome);
    return result;
  }

  auto slots = exec::ExecutorOrDefault(config.executor)
                   .MapWithPolicy(
                       ratios.size(),
                       [&](std::size_t i, unsigned attempt) {
                         return measure_point(i, attempt);
                       },
                       config.retry, &result.report, config.cancel);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.report.points[i].label = "alufetch_r" + FormatDouble(ratios[i], 2);
    if (slots[i]) result.points.push_back(std::move(*slots[i]));
  }
  std::vector<adapt::Sample> samples;
  samples.reserve(result.points.size());
  for (const AluFetchPoint& point : result.points) {
    samples.push_back(
        {point.ratio, std::string(sim::ToString(point.m.stats.bottleneck))});
  }
  if (const auto t = adapt::FirstTransitionTo(samples, alu_label)) {
    result.crossover = t->upper_x;
  }
  return result;
}

SeriesSet AluFetchFigure(const std::vector<CurveKey>& curves,
                         const AluFetchConfig& config,
                         const std::string& title) {
  SeriesSet figure(title, "ALU:Fetch Ratio", "Time in seconds");
  for (const CurveKey& key : curves) {
    Runner runner(key.arch);
    const AluFetchResult result =
        RunAluFetch(runner, key.mode, key.type, config);
    Series& series = figure.Get(key.Name());
    for (const AluFetchPoint& p : result.points) {
      series.Add(p.ratio, p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const AluFetchResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings;
  if (result.points.empty()) return findings;
  findings.push_back({report::FindingKind::kCrossover, curve,
                      "alu_bound_crossover", result.crossover, "ratio", ""});
  findings.push_back({report::FindingKind::kPlateau, curve,
                      "fetch_bound_flat_seconds",
                      result.points.front().m.seconds, "s", ""});
  findings.push_back({report::FindingKind::kPlateau, curve,
                      "max_ratio_seconds", result.points.back().m.seconds,
                      "s", ""});
  if (result.adaptive.has_value()) {
    // Adaptive-only: dense documents must stay byte-identical.
    const auto extra =
        adapt::AdaptiveFindings(*result.adaptive, curve, "ratio");
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  return findings;
}

}  // namespace amdmb::suite
