#include "suite/block_size.hpp"

#include <cmath>

#include "common/status.hpp"
#include "suite/kernelgen.hpp"

namespace amdmb::suite {

std::vector<BlockShape> WavefrontBlockShapes(unsigned wavefront_size) {
  Require(wavefront_size > 0 &&
              (wavefront_size & (wavefront_size - 1)) == 0,
          "WavefrontBlockShapes: wavefront size must be a power of two");
  std::vector<BlockShape> shapes;
  for (unsigned width = wavefront_size; width >= 1; width /= 2) {
    shapes.push_back(BlockShape{width, wavefront_size / width});
  }
  return shapes;
}

BlockSizeResult RunBlockSizeExplorer(const Runner& runner,
                                     const BlockSizeConfig& config) {
  Require(runner.Arch().supports_compute,
          "block-size explorer requires compute shader mode");
  GenericSpec spec;
  spec.inputs = config.inputs;
  spec.alu_ops = AluOpsForRatio(config.alu_fetch_ratio, config.inputs);
  spec.type = config.type;
  spec.read_path = ReadPath::kTexture;
  spec.write_path = WritePath::kGlobal;
  spec.name = "block_explorer";
  const il::Kernel kernel = GenerateGeneric(spec);

  // Every shape must divide the domain.
  std::vector<BlockShape> shapes;
  for (const BlockShape& block :
       WavefrontBlockShapes(runner.Arch().wavefront_size)) {
    if (config.domain.width % block.x == 0 &&
        config.domain.height % block.y == 0) {
      shapes.push_back(block);
    }
  }
  Check(!shapes.empty(), "block explorer: no dividing shapes");

  BlockSizeResult result;
  auto label_of = [](const BlockShape& block) {
    return "block_" + std::to_string(block.x) + "x" + std::to_string(block.y);
  };
  auto slots = exec::ExecutorOrDefault(config.executor)
                   .MapWithPolicy(
                       shapes.size(),
                       [&](std::size_t i, unsigned attempt) {
                         sim::LaunchConfig launch;
                         launch.domain = config.domain;
                         launch.mode = ShaderMode::kCompute;
                         launch.block = shapes[i];
                         launch.repetitions = config.repetitions;
                         launch.profile = config.profile;
                         BlockSizePoint point;
                         point.block = shapes[i];
                         point.m = runner.Measure(
                             kernel, launch, {label_of(shapes[i]), attempt});
                         return point;
                       },
                       config.retry, &result.report, config.cancel);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.report.points[i].label = label_of(shapes[i]);
    if (slots[i]) result.points.push_back(std::move(*slots[i]));
  }

  double naive_seconds = 0.0;
  bool first = true;
  for (const BlockSizePoint& point : result.points) {
    if (first || point.m.seconds < result.best_seconds) {
      result.best = point.block;
      result.best_seconds = point.m.seconds;
      first = false;
    }
    if (point.block.y == 1) naive_seconds = point.m.seconds;
  }
  result.naive_penalty = naive_seconds > 0.0 && result.best_seconds > 0.0
                             ? naive_seconds / result.best_seconds
                             : 1.0;
  return result;
}

SeriesSet BlockSizeFigure(const BlockSizeConfig& config,
                          const std::string& title) {
  SeriesSet figure(title, "log2(block width)", "Time in seconds");
  for (const GpuArch& arch : AllArchs()) {
    if (!arch.supports_compute) continue;
    Runner runner(arch);
    const BlockSizeResult result = RunBlockSizeExplorer(runner, config);
    const CurveKey key{arch, ShaderMode::kCompute, config.type};
    Series& series = figure.Get(key.Name());
    for (const BlockSizePoint& p : result.points) {
      series.Add(std::log2(static_cast<double>(p.block.x)), p.m.seconds);
    }
  }
  return figure;
}

std::vector<report::Finding> Findings(const BlockSizeResult& result,
                                      const std::string& curve) {
  std::vector<report::Finding> findings;
  if (result.points.empty()) return findings;
  findings.push_back({report::FindingKind::kPlateau, curve, "best_seconds",
                      result.best_seconds, "s",
                      "best block " + std::to_string(result.best.x) + "x" +
                          std::to_string(result.best.y)});
  findings.push_back({report::FindingKind::kRatio, curve, "naive_penalty",
                      result.naive_penalty, "x", ""});
  return findings;
}

}  // namespace amdmb::suite
