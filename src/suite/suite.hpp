// Umbrella header for the micro-benchmark suite — the paper's
// contribution — plus a run-everything driver used by the quickstart
// example.
#pragma once

#include "suite/alu_fetch.hpp"
#include "suite/block_size.hpp"
#include "suite/bottleneck.hpp"
#include "suite/domain_size.hpp"
#include "suite/kernelgen.hpp"
#include "suite/microbench.hpp"
#include "suite/read_latency.hpp"
#include "suite/register_usage.hpp"
#include "suite/write_latency.hpp"

namespace amdmb::suite {

/// Scales sweep densities / domains down for quick smoke runs.
struct SuiteOptions {
  bool quick = false;
  /// Restrict to one GPU (empty = all three generations).
  std::string arch_filter;
};

/// Runs a condensed version of every micro-benchmark on the selected
/// GPUs and renders a textual report: crossovers, latency slopes, and
/// register-pressure effects, each with the paper's qualitative claim
/// alongside.
std::string RunFullSuiteReport(const SuiteOptions& options);

}  // namespace amdmb::suite
