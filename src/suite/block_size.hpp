// Block-size explorer — the extension the paper proposes in Sec. IV
// ("it is possible that one can achieve greater performance by using
// different block sizes (4x16 for example). It is also possible that
// certain applications may perform better than others when using
// different block sizes") and in its future work ("more explicitly
// isolate parameters").
//
// Sweeps every rectangular one-wavefront block shape (64x1 .. 1x64) for
// a given kernel in compute mode and reports the per-shape measurement,
// the best shape, and the penalty of the naive 64x1 choice.
#pragma once

#include <vector>

#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct BlockSizeConfig {
  unsigned inputs = 16;
  double alu_fetch_ratio = 0.25;  ///< Fetch-bound, so block shape matters.
  DataType type = DataType::kFloat4;
  Domain domain{1024, 1024};
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  /// Sweep points run through this executor (null = the process default).
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
};

struct BlockSizePoint {
  BlockShape block;
  Measurement m;
};

struct BlockSizeResult {
  std::vector<BlockSizePoint> points;  ///< Successful shapes, wide to tall.
  BlockShape best;
  double best_seconds = 0.0;
  /// Slowdown of the naive 64x1 shape relative to the best.
  double naive_penalty = 1.0;
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
};

/// All one-wavefront rectangular block shapes for the wavefront size
/// (64x1, 32x2, 16x4, 8x8, 4x16, 2x32, 1x64 for 64-thread wavefronts).
std::vector<BlockShape> WavefrontBlockShapes(unsigned wavefront_size);

BlockSizeResult RunBlockSizeExplorer(const Runner& runner,
                                     const BlockSizeConfig& config);

/// Typed findings of one exploration, attributed to `curve`:
/// "best_seconds" (detail names the winning WxH shape) and
/// "naive_penalty" (64x1 slowdown over the best shape). Empty when the
/// exploration produced no points.
std::vector<report::Finding> Findings(const BlockSizeResult& result,
                                      const std::string& curve);

/// Figure: one curve per GPU (compute-capable), x = log2(block width).
SeriesSet BlockSizeFigure(const BlockSizeConfig& config,
                          const std::string& title);

}  // namespace amdmb::suite
