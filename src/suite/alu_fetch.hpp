// ALU:Fetch ratio micro-benchmark (paper Sec. III-A / IV-A, Figs. 7-10).
//
// Sweeps the SKA-normalised ALU:Fetch ratio and locates the crossover
// where the kernel's bottleneck flips from the fetch path to the ALUs.
// Output size stays 1 to keep the bottleneck on the ALU/fetch
// relationship; read and write paths are configurable so the same sweep
// reproduces Fig. 7 (texture read, streaming store), Fig. 9 (global
// read, streaming store) and Fig. 10 (global read, global write).
#pragma once

#include <optional>
#include <vector>

#include "adapt/refiner.hpp"
#include "report/record.hpp"
#include "report/series.hpp"
#include "suite/microbench.hpp"

namespace amdmb::suite {

struct AluFetchConfig {
  unsigned inputs = 16;
  unsigned outputs = 1;
  double ratio_min = 0.25;
  double ratio_max = 8.0;
  double ratio_step = 0.25;
  Domain domain{1024, 1024};
  BlockShape block{64, 1};
  ReadPath read_path = ReadPath::kTexture;
  WritePath write_path = WritePath::kStream;
  unsigned repetitions = kPaperRepetitions;
  /// Force hardware-counter profiling for every point of this sweep
  /// (tests use this to bypass the cached AMDMB_PROF snapshot).
  bool profile = false;
  /// Sweep points run through this executor (null = the process default,
  /// AMDMB_THREADS workers). Results are bit-identical at any width.
  const exec::SweepExecutor* executor = nullptr;
  /// Per-point retry/skip behaviour under faults (AMDMB_RETRY default).
  exec::RetryPolicy retry = exec::RetryPolicy::FromEnv();
  /// Optional cooperative cancellation: points not yet started when the
  /// token fires are skipped (the bench binaries wire their SIGINT/
  /// SIGTERM flag here so an interrupted run still flushes a partial
  /// figure).
  const exec::CancelToken* cancel = nullptr;
  /// Non-null switches the sweep to adaptive refinement (adapt::Refiner):
  /// only the coarse pass plus bisection points around bottleneck flips
  /// are measured. Dense output is unchanged when null.
  const adapt::Settings* adaptive = nullptr;
};

struct AluFetchPoint {
  double ratio = 0.0;
  Measurement m;
};

struct AluFetchResult {
  std::vector<AluFetchPoint> points;  ///< Successful points only.
  /// First swept ratio at which the simulator classifies the kernel as
  /// ALU-bound, if it happens within the sweep.
  std::optional<double> crossover;
  /// Per-point outcome (ok / retried / skipped) of the whole sweep.
  exec::RunReport report;
  /// Refinement record (points spent, typed transitions); present only
  /// when the sweep ran adaptively.
  std::optional<adapt::Outcome> adaptive;
};

AluFetchResult RunAluFetch(const Runner& runner, ShaderMode mode,
                           DataType type, const AluFetchConfig& config);

/// Typed findings of one sweep, attributed to `curve`: the
/// "alu_bound_crossover" (censored when the flip never happens within
/// the sweep) plus the flat-region and max-ratio plateau levels.
/// Empty when the sweep produced no points.
std::vector<report::Finding> Findings(const AluFetchResult& result,
                                      const std::string& curve);

/// Runs the sweep for every curve in `curves` and assembles the figure.
SeriesSet AluFetchFigure(const std::vector<CurveKey>& curves,
                         const AluFetchConfig& config,
                         const std::string& title);

}  // namespace amdmb::suite
