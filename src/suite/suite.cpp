#include "suite/suite.hpp"

#include <sstream>

#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "report/record.hpp"

namespace amdmb::suite {

namespace {

std::vector<GpuArch> SelectArchs(const SuiteOptions& options) {
  if (options.arch_filter.empty()) return AllArchs();
  return {ArchByName(options.arch_filter)};
}

/// One curve's table row plus any degradations from its sweeps.
struct CurveRow {
  std::vector<std::string> row;
  std::vector<report::Degradation> degradations;
};

/// Table cell for a finding's value: fixed-precision number, ">sweep"
/// for a censored crossover, "n/a" when the finding is absent (the
/// sweep produced no points).
std::string Cell(const report::Finding* finding, int precision,
                 const char* censored = "n/a") {
  if (finding == nullptr) return "n/a";
  if (!finding->value.has_value()) return censored;
  return FormatDouble(*finding->value, precision);
}

/// Integer-valued cell (GPR counts).
std::string IntCell(const report::Finding* finding) {
  if (finding == nullptr || !finding->value.has_value()) return "n/a";
  return std::to_string(static_cast<unsigned>(*finding->value));
}

}  // namespace

std::string RunFullSuiteReport(const SuiteOptions& options) {
  std::ostringstream os;
  const std::vector<GpuArch> archs = SelectArchs(options);
  const Domain domain =
      options.quick ? Domain{256, 256} : Domain{1024, 1024};
  const unsigned reps = kPaperRepetitions;
  // Curves fan out across the worker pool; each curve's own point sweep
  // then runs inline on its worker (nested sweeps execute serially), so
  // the report is bit-identical at any thread count.
  const exec::SweepExecutor& executor = exec::SweepExecutor::Default();
  // Non-ok sweep points across every section; printed as a trailing
  // "Fault annotations" block only when at least one point degraded, so
  // a fault-free run renders byte-identically to earlier releases.
  std::vector<report::Degradation> degradations;

  os << RenderHardwareTable() << "\n";

  // --- ALU:Fetch crossovers (Fig. 7 condensed) --------------------------
  {
    TextTable table({"Curve", "Crossover ratio", "Flat-region time (s)",
                     "Time at max ratio (s)"});
    AluFetchConfig config;
    config.domain = domain;
    config.repetitions = reps;
    if (options.quick) config.ratio_step = 1.0;
    const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
    const auto rows =
        executor.Map(curves.size(), [&](std::size_t i) {
          const CurveKey& key = curves[i];
          const Runner runner(key.arch);
          const AluFetchResult r =
              RunAluFetch(runner, key.mode, key.type, config);
          const auto findings = Findings(r, key.Name());
          CurveRow out;
          out.degradations = report::DegradationsFrom(r.report, key.Name());
          out.row = {key.Name(),
                     Cell(report::FindFinding(findings,
                                              "alu_bound_crossover"),
                          2, ">sweep"),
                     Cell(report::FindFinding(findings,
                                              "fetch_bound_flat_seconds"),
                          2),
                     Cell(report::FindFinding(findings, "max_ratio_seconds"),
                          2)};
          // An empty sweep has no crossover finding at all; the legacy
          // report still printed ">sweep" for that column.
          if (findings.empty()) out.row[1] = ">sweep";
          return out;
        });
    for (const CurveRow& cr : rows) {
      table.AddRow(cr.row);
      degradations.insert(degradations.end(), cr.degradations.begin(),
                          cr.degradations.end());
    }
    os << "ALU:Fetch ratio micro-benchmark (paper Fig. 7)\n"
       << "Paper claim: float crosses to ALU-bound far earlier than float4; "
          "compute 64x1 crosses later than pixel mode.\n"
       << table.Render() << "\n";
  }

  // --- Read latency slopes (Figs. 11-12 condensed) ----------------------
  {
    TextTable table({"Curve", "Path", "sec/input", "R^2"});
    for (const ReadPath path : {ReadPath::kTexture, ReadPath::kGlobal}) {
      ReadLatencyConfig config;
      config.domain = domain;
      config.repetitions = reps;
      config.read_path = path;
      if (options.quick) config.max_inputs = 8;
      const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
      const auto rows =
          executor.Map(curves.size(), [&](std::size_t i) {
            const CurveKey& key = curves[i];
            const Runner runner(key.arch);
            const ReadLatencyResult r =
                RunReadLatency(runner, key.mode, key.type, config);
            const auto findings = Findings(r, key.Name());
            CurveRow out;
            out.degradations =
                report::DegradationsFrom(r.report, key.Name());
            out.row = {key.Name(), std::string(ToString(path)),
                       Cell(report::FindFinding(findings,
                                                "seconds_per_input"),
                            3),
                       Cell(report::FindFinding(findings, "fit_r2"), 3)};
            return out;
          });
      for (const CurveRow& cr : rows) {
        table.AddRow(cr.row);
        degradations.insert(degradations.end(), cr.degradations.begin(),
                            cr.degradations.end());
      }
    }
    os << "Read latency micro-benchmarks (paper Figs. 11-12)\n"
       << "Paper claim: latency is linear in the input count; float4 "
          "texture fetches cost ~4x float; RV670 global reads are far "
          "slower than its texture path.\n"
       << table.Render() << "\n";
  }

  // --- Write latency slopes (Figs. 13-14 condensed) ---------------------
  {
    TextTable table({"Curve", "Path", "sec/output", "R^2"});
    for (const WritePath path : {WritePath::kStream, WritePath::kGlobal}) {
      WriteLatencyConfig config;
      config.domain = domain;
      config.repetitions = reps;
      config.write_path = path;
      std::vector<CurveKey> curves;
      for (const CurveKey& key : PaperCurves(
               /*include_pixel=*/true,
               /*include_compute=*/path == WritePath::kGlobal, archs)) {
        if (path == WritePath::kStream && key.mode == ShaderMode::kCompute) {
          continue;  // Compute mode has no color buffers (Sec. IV-C).
        }
        curves.push_back(key);
      }
      const auto rows =
          executor.Map(curves.size(), [&](std::size_t i) {
            const CurveKey& key = curves[i];
            const Runner runner(key.arch);
            const WriteLatencyResult r =
                RunWriteLatency(runner, key.mode, key.type, config);
            const auto findings = Findings(r, key.Name());
            CurveRow out;
            out.degradations =
                report::DegradationsFrom(r.report, key.Name());
            out.row = {key.Name(), std::string(ToString(path)),
                       Cell(report::FindFinding(findings,
                                                "seconds_per_output"),
                            3),
                       Cell(report::FindFinding(findings, "fit_r2"), 3)};
            return out;
          });
      for (const CurveRow& cr : rows) {
        table.AddRow(cr.row);
        degradations.insert(degradations.end(), cr.degradations.begin(),
                            cr.degradations.end());
      }
    }
    os << "Write latency micro-benchmarks (paper Figs. 13-14)\n"
       << "Paper claim: linear in the output count; global writes move "
          "each 32-bit element at a constant rate (float4 ~ 4x float); "
          "streaming stores burst (float4 ~ float).\n"
       << table.Render() << "\n";
  }

  // --- Register pressure (Fig. 16 condensed) ----------------------------
  {
    TextTable table({"Curve", "GPR max", "time (s)", "GPR min", "time (s)",
                     "control flat?"});
    RegisterUsageConfig config;
    config.repetitions = reps;
    if (options.quick) config.domain = Domain{256, 256};
    const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
    const auto rows =
        executor.Map(curves.size(), [&](std::size_t i) {
          const CurveKey& key = curves[i];
          const Runner runner(key.arch);
          const RegisterUsageResult sweep =
              RunRegisterUsage(runner, key.mode, key.type, config);
          RegisterUsageConfig control_config = config;
          control_config.clause_control = true;
          control_config.min_step = 0;
          control_config.max_step = config.max_step;
          const RegisterUsageResult control =
              RunRegisterUsage(runner, key.mode, key.type, control_config);
          const auto findings = Findings(sweep, key.Name());
          const auto control_findings =
              ControlFindings(control, key.Name() + " control");
          CurveRow out;
          out.degradations =
              report::DegradationsFrom(sweep.report, key.Name());
          const auto control_degradations = report::DegradationsFrom(
              control.report, key.Name() + " control");
          out.degradations.insert(out.degradations.end(),
                                  control_degradations.begin(),
                                  control_degradations.end());
          std::string flat = "n/a";
          if (const report::Finding* variation =
                  report::FindFinding(control_findings, "level_variation")) {
            flat = *variation->value < 0.2 ? "yes" : "NO";
          }
          out.row = {
              key.Name(),
              IntCell(report::FindFinding(findings, "gpr_max")),
              Cell(report::FindFinding(findings, "gpr_max_seconds"), 2),
              IntCell(report::FindFinding(findings, "gpr_min")),
              Cell(report::FindFinding(findings, "gpr_min_seconds"), 2),
              flat};
          return out;
        });
    for (const CurveRow& cr : rows) {
      table.AddRow(cr.row);
      degradations.insert(degradations.end(), cr.degradations.begin(),
                          cr.degradations.end());
    }
    os << "Register usage micro-benchmark (paper Fig. 16 + Fig. 5 control)\n"
       << "Paper claim: lowering register pressure raises occupancy and "
          "cuts runtime until the kernel goes ALU-bound; the clause-usage "
          "control (sampling up front) stays flat.\n"
       << table.Render() << "\n";
  }

  if (!degradations.empty()) {
    os << "Fault annotations (degraded sweep points)\n";
    for (const report::Degradation& d : degradations) {
      os << "  " << d.Render() << "\n";
    }
    os << "\n";
  }

  return os.str();
}

}  // namespace amdmb::suite
