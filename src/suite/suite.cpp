#include "suite/suite.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"
#include "exec/sweep_executor.hpp"

namespace amdmb::suite {

namespace {

std::vector<GpuArch> SelectArchs(const SuiteOptions& options) {
  if (options.arch_filter.empty()) return AllArchs();
  return {ArchByName(options.arch_filter)};
}

/// One curve's table row plus any fault annotations from its sweeps.
struct CurveRow {
  std::vector<std::string> row;
  std::vector<std::string> faults;
};

/// Fault lines of `report`, each prefixed with the owning curve name.
std::vector<std::string> PrefixedFaults(const exec::RunReport& report,
                                        const std::string& curve) {
  std::vector<std::string> lines;
  for (const std::string& line : report.FailureLines()) {
    lines.push_back(curve + "/" + line);
  }
  return lines;
}

}  // namespace

std::string RunFullSuiteReport(const SuiteOptions& options) {
  std::ostringstream os;
  const std::vector<GpuArch> archs = SelectArchs(options);
  const Domain domain =
      options.quick ? Domain{256, 256} : Domain{1024, 1024};
  const unsigned reps = kPaperRepetitions;
  // Curves fan out across the worker pool; each curve's own point sweep
  // then runs inline on its worker (nested sweeps execute serially), so
  // the report is bit-identical at any thread count.
  const exec::SweepExecutor& executor = exec::SweepExecutor::Default();
  // Non-ok sweep points across every section; printed as a trailing
  // "Fault annotations" block only when at least one point degraded, so
  // a fault-free run renders byte-identically to earlier releases.
  std::vector<std::string> fault_lines;

  os << RenderHardwareTable() << "\n";

  // --- ALU:Fetch crossovers (Fig. 7 condensed) --------------------------
  {
    TextTable table({"Curve", "Crossover ratio", "Flat-region time (s)",
                     "Time at max ratio (s)"});
    AluFetchConfig config;
    config.domain = domain;
    config.repetitions = reps;
    if (options.quick) config.ratio_step = 1.0;
    const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
    const auto rows =
        executor.Map(curves.size(), [&](std::size_t i) {
          const CurveKey& key = curves[i];
          const Runner runner(key.arch);
          const AluFetchResult r =
              RunAluFetch(runner, key.mode, key.type, config);
          CurveRow out;
          out.faults = PrefixedFaults(r.report, key.Name());
          const bool any = !r.points.empty();
          out.row = {key.Name(),
                     r.crossover ? FormatDouble(*r.crossover, 2) : ">sweep",
                     any ? FormatDouble(r.points.front().m.seconds, 2) : "n/a",
                     any ? FormatDouble(r.points.back().m.seconds, 2) : "n/a"};
          return out;
        });
    for (const CurveRow& cr : rows) {
      table.AddRow(cr.row);
      fault_lines.insert(fault_lines.end(), cr.faults.begin(),
                         cr.faults.end());
    }
    os << "ALU:Fetch ratio micro-benchmark (paper Fig. 7)\n"
       << "Paper claim: float crosses to ALU-bound far earlier than float4; "
          "compute 64x1 crosses later than pixel mode.\n"
       << table.Render() << "\n";
  }

  // --- Read latency slopes (Figs. 11-12 condensed) ----------------------
  {
    TextTable table({"Curve", "Path", "sec/input", "R^2"});
    for (const ReadPath path : {ReadPath::kTexture, ReadPath::kGlobal}) {
      ReadLatencyConfig config;
      config.domain = domain;
      config.repetitions = reps;
      config.read_path = path;
      if (options.quick) config.max_inputs = 8;
      const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
      const auto rows =
          executor.Map(curves.size(), [&](std::size_t i) {
            const CurveKey& key = curves[i];
            const Runner runner(key.arch);
            const ReadLatencyResult r =
                RunReadLatency(runner, key.mode, key.type, config);
            CurveRow out;
            out.faults = PrefixedFaults(r.report, key.Name());
            out.row = {key.Name(), std::string(ToString(path)),
                       FormatDouble(r.fit.slope, 3),
                       FormatDouble(r.fit.r2, 3)};
            return out;
          });
      for (const CurveRow& cr : rows) {
        table.AddRow(cr.row);
        fault_lines.insert(fault_lines.end(), cr.faults.begin(),
                           cr.faults.end());
      }
    }
    os << "Read latency micro-benchmarks (paper Figs. 11-12)\n"
       << "Paper claim: latency is linear in the input count; float4 "
          "texture fetches cost ~4x float; RV670 global reads are far "
          "slower than its texture path.\n"
       << table.Render() << "\n";
  }

  // --- Write latency slopes (Figs. 13-14 condensed) ---------------------
  {
    TextTable table({"Curve", "Path", "sec/output", "R^2"});
    for (const WritePath path : {WritePath::kStream, WritePath::kGlobal}) {
      WriteLatencyConfig config;
      config.domain = domain;
      config.repetitions = reps;
      config.write_path = path;
      std::vector<CurveKey> curves;
      for (const CurveKey& key : PaperCurves(
               /*include_pixel=*/true,
               /*include_compute=*/path == WritePath::kGlobal, archs)) {
        if (path == WritePath::kStream && key.mode == ShaderMode::kCompute) {
          continue;  // Compute mode has no color buffers (Sec. IV-C).
        }
        curves.push_back(key);
      }
      const auto rows =
          executor.Map(curves.size(), [&](std::size_t i) {
            const CurveKey& key = curves[i];
            const Runner runner(key.arch);
            const WriteLatencyResult r =
                RunWriteLatency(runner, key.mode, key.type, config);
            CurveRow out;
            out.faults = PrefixedFaults(r.report, key.Name());
            out.row = {key.Name(), std::string(ToString(path)),
                       FormatDouble(r.fit.slope, 3),
                       FormatDouble(r.fit.r2, 3)};
            return out;
          });
      for (const CurveRow& cr : rows) {
        table.AddRow(cr.row);
        fault_lines.insert(fault_lines.end(), cr.faults.begin(),
                           cr.faults.end());
      }
    }
    os << "Write latency micro-benchmarks (paper Figs. 13-14)\n"
       << "Paper claim: linear in the output count; global writes move "
          "each 32-bit element at a constant rate (float4 ~ 4x float); "
          "streaming stores burst (float4 ~ float).\n"
       << table.Render() << "\n";
  }

  // --- Register pressure (Fig. 16 condensed) ----------------------------
  {
    TextTable table({"Curve", "GPR max", "time (s)", "GPR min", "time (s)",
                     "control flat?"});
    RegisterUsageConfig config;
    config.repetitions = reps;
    if (options.quick) config.domain = Domain{256, 256};
    const std::vector<CurveKey> curves = PaperCurves(true, true, archs);
    const auto rows =
        executor.Map(curves.size(), [&](std::size_t i) {
          const CurveKey& key = curves[i];
          const Runner runner(key.arch);
          const RegisterUsageResult sweep =
              RunRegisterUsage(runner, key.mode, key.type, config);
          RegisterUsageConfig control_config = config;
          control_config.clause_control = true;
          control_config.min_step = 0;
          control_config.max_step = config.max_step;
          const RegisterUsageResult control =
              RunRegisterUsage(runner, key.mode, key.type, control_config);
          CurveRow out;
          out.faults = PrefixedFaults(sweep.report, key.Name());
          const auto control_faults =
              PrefixedFaults(control.report, key.Name() + " control");
          out.faults.insert(out.faults.end(), control_faults.begin(),
                            control_faults.end());
          std::string flat = "n/a";
          if (!control.points.empty()) {
            double cmin = control.points.front().m.seconds;
            double cmax = cmin;
            for (const RegisterUsagePoint& p : control.points) {
              cmin = std::min(cmin, p.m.seconds);
              cmax = std::max(cmax, p.m.seconds);
            }
            flat = (cmax - cmin) / cmax < 0.2 ? "yes" : "NO";
          }
          const bool any = !sweep.points.empty();
          out.row = {
              key.Name(),
              any ? std::to_string(sweep.points.front().gpr_count) : "n/a",
              any ? FormatDouble(sweep.points.front().m.seconds, 2) : "n/a",
              any ? std::to_string(sweep.points.back().gpr_count) : "n/a",
              any ? FormatDouble(sweep.points.back().m.seconds, 2) : "n/a",
              flat};
          return out;
        });
    for (const CurveRow& cr : rows) {
      table.AddRow(cr.row);
      fault_lines.insert(fault_lines.end(), cr.faults.begin(),
                         cr.faults.end());
    }
    os << "Register usage micro-benchmark (paper Fig. 16 + Fig. 5 control)\n"
       << "Paper claim: lowering register pressure raises occupancy and "
          "cuts runtime until the kernel goes ALU-bound; the clause-usage "
          "control (sampling up front) stays flat.\n"
       << table.Render() << "\n";
  }

  if (!fault_lines.empty()) {
    os << "Fault annotations (degraded sweep points)\n";
    for (const std::string& line : fault_lines) {
      os << "  " << line << "\n";
    }
    os << "\n";
  }

  return os.str();
}

}  // namespace amdmb::suite
