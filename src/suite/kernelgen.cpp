#include "suite/kernelgen.hpp"

#include <cmath>

#include "common/status.hpp"
#include "il/builder.hpp"
#include "il/verifier.hpp"

namespace amdmb::suite {

namespace {

using il::Operand;

/// Chain state: the last two values, so the generator can emit the
/// paper's r[reg] = r[reg-1] + r[reg-2] dependent adds.
struct Chain {
  unsigned last = 0;
  unsigned prev = 0;
  bool has_prev = false;

  void Push(unsigned reg) {
    prev = last;
    has_prev = true;
    last = reg;
  }
};

/// Emits `count` dependent chain adds.
void EmitChain(il::Builder& b, Chain& chain, unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    Check(chain.has_prev, "EmitChain: chain needs two live values");
    chain.Push(b.Add(Operand::Reg(chain.last), Operand::Reg(chain.prev)));
  }
}

/// Folds `values` into the chain, one add per value (the Fig. 3 input
/// loop). The first two values seed the chain when it is empty.
unsigned FoldInputs(il::Builder& b, Chain& chain,
                    const std::vector<unsigned>& values) {
  unsigned ops = 0;
  std::size_t i = 0;
  if (!chain.has_prev) {
    Check(values.size() >= 2, "FoldInputs: need two values to seed chain");
    chain.prev = values[0];
    chain.last = b.Add(Operand::Reg(values[0]), Operand::Reg(values[1]));
    chain.has_prev = true;
    i = 2;
    ++ops;
  }
  for (; i < values.size(); ++i) {
    chain.Push(b.Add(Operand::Reg(chain.last), Operand::Reg(values[i])));
    ++ops;
  }
  return ops;
}

void WriteOutputs(il::Builder& b, Chain& chain, unsigned outputs) {
  // The paper writes the tail of the chain; with multiple outputs each
  // output gets its own chain value so every write has a distinct source.
  std::vector<unsigned> tail;
  tail.push_back(chain.last);
  for (unsigned o = 1; o < outputs; ++o) {
    chain.Push(b.Add(Operand::Reg(chain.last), Operand::Reg(chain.prev)));
    tail.push_back(chain.last);
  }
  for (unsigned o = 0; o < outputs; ++o) b.Write(o, tail[o]);
}

il::Signature MakeSignature(unsigned inputs, unsigned outputs,
                            unsigned constants, DataType type, ReadPath read,
                            WritePath write) {
  il::Signature sig;
  sig.inputs = inputs;
  sig.outputs = outputs;
  sig.constants = constants;
  sig.type = type;
  sig.read_path = read;
  sig.write_path = write;
  return sig;
}

}  // namespace

unsigned AluOpsForRatio(double ratio, unsigned inputs) {
  Require(ratio > 0.0, "AluOpsForRatio: ratio must be positive");
  return static_cast<unsigned>(std::lround(ratio * 4.0 * inputs));
}

il::Kernel GenerateGeneric(const GenericSpec& spec) {
  Require(spec.inputs >= 2, "GenerateGeneric: need at least two inputs");
  Require(spec.outputs >= 1, "GenerateGeneric: need at least one output");
  Require(spec.alu_ops >= spec.inputs - 1,
          "GenerateGeneric: ALU budget cannot fold all inputs");

  il::Builder b(spec.name,
                MakeSignature(spec.inputs, spec.outputs, spec.constants,
                              spec.type, spec.read_path, spec.write_path));
  // Fig. 3: all sampling happens before any ALU op.
  std::vector<unsigned> fetched;
  fetched.reserve(spec.inputs);
  for (unsigned i = 0; i < spec.inputs; ++i) fetched.push_back(b.Fetch(i));

  Chain chain;
  unsigned ops = FoldInputs(b, chain, fetched);
  // The extra per-output chain adds below count toward the budget.
  const unsigned extra_for_outputs = spec.outputs - 1;
  Check(spec.alu_ops >= ops + extra_for_outputs,
        "GenerateGeneric: ALU budget too small for outputs");
  EmitChain(b, chain, spec.alu_ops - ops - extra_for_outputs);
  WriteOutputs(b, chain, spec.outputs);
  il::Kernel kernel = std::move(b).Build();
  il::VerifyOrThrow(kernel);
  return kernel;
}

namespace {

/// Shared shape of the Fig. 6 / Fig. 5 kernels: how many inputs are
/// sampled up front and how the ALU budget splits into step+1 segments.
struct UsagePlan {
  unsigned initial_inputs = 0;
  unsigned total_alu_ops = 0;
  std::vector<unsigned> segment_ops;  ///< step+1 entries summing to total.
};

UsagePlan PlanUsage(const RegisterUsageSpec& spec) {
  Require(spec.space >= 1, "register usage: space must be >= 1");
  Require(spec.inputs > spec.space * spec.step + 1,
          "register usage: space*step must leave at least two initial inputs");
  UsagePlan plan;
  plan.initial_inputs = spec.inputs - spec.space * spec.step;
  plan.total_alu_ops = AluOpsForRatio(spec.alu_fetch_ratio, spec.inputs);
  const unsigned segments = spec.step + 1;
  Require(plan.total_alu_ops >= spec.inputs - 1 + segments,
          "register usage: ALU budget too small for the clause layout");
  // Split the budget evenly so total ALU work is identical across step
  // values (the control experiment depends on this).
  const unsigned base = plan.total_alu_ops / segments;
  plan.segment_ops.assign(segments, base);
  plan.segment_ops.back() += plan.total_alu_ops - base * segments;
  return plan;
}

}  // namespace

il::Kernel GenerateRegisterUsage(const RegisterUsageSpec& spec) {
  const UsagePlan plan = PlanUsage(spec);
  il::Builder b(spec.name,
                MakeSignature(spec.inputs, 1, 0, spec.type, spec.read_path,
                              spec.write_path));
  // Initial TEX clause: only the inputs not deferred to later clauses.
  std::vector<unsigned> fetched;
  for (unsigned i = 0; i < plan.initial_inputs; ++i) {
    fetched.push_back(b.Fetch(i));
  }
  Chain chain;
  unsigned used = FoldInputs(b, chain, fetched);
  Check(plan.segment_ops[0] >= used,
        "register usage: first segment cannot fold the initial inputs");
  EmitChain(b, chain, plan.segment_ops[0] - used);

  unsigned next_input = plan.initial_inputs;
  for (unsigned s = 0; s < spec.step; ++s) {
    // Late TEX clause: sample `space` inputs right before their use.
    std::vector<unsigned> late;
    for (unsigned i = 0; i < spec.space; ++i) late.push_back(b.Fetch(next_input++));
    used = FoldInputs(b, chain, late);
    const unsigned budget = plan.segment_ops[s + 1];
    Check(budget >= used, "register usage: segment budget too small");
    EmitChain(b, chain, budget - used);
  }
  Check(next_input == spec.inputs, "register usage: inputs left unsampled");
  b.Write(0, chain.last);
  il::Kernel kernel = std::move(b).Build();
  il::VerifyOrThrow(kernel);
  return kernel;
}

il::Kernel GenerateClauseUsage(const RegisterUsageSpec& spec) {
  const UsagePlan plan = PlanUsage(spec);
  il::Builder b(spec.name + "_clause_control",
                MakeSignature(spec.inputs, 1, 0, spec.type, spec.read_path,
                              spec.write_path));
  // Fig. 5: ALL inputs sampled up front...
  std::vector<unsigned> fetched;
  for (unsigned i = 0; i < spec.inputs; ++i) fetched.push_back(b.Fetch(i));

  // ...but the ALU work is segmented into the same clauses, consuming the
  // same inputs at the same points.
  std::vector<unsigned> initial(fetched.begin(),
                                fetched.begin() + plan.initial_inputs);
  Chain chain;
  unsigned used = FoldInputs(b, chain, initial);
  EmitChain(b, chain, plan.segment_ops[0] - used);

  unsigned next_input = plan.initial_inputs;
  for (unsigned s = 0; s < spec.step; ++s) {
    b.ClauseBreak();
    std::vector<unsigned> late(fetched.begin() + next_input,
                               fetched.begin() + next_input + spec.space);
    next_input += spec.space;
    used = FoldInputs(b, chain, late);
    EmitChain(b, chain, plan.segment_ops[s + 1] - used);
  }
  b.Write(0, chain.last);
  il::Kernel kernel = std::move(b).Build();
  il::VerifyOrThrow(kernel);
  return kernel;
}

}  // namespace amdmb::suite
