// Interactive kernel explorer: build any suite kernel from the command
// line, run it on any simulated GPU, and inspect everything the library
// exposes — IL, ISA disassembly, SKA statics, dynamic counters,
// bottleneck, and advice.
//
// Usage:
//   ./example_kernel_explorer [options]
//     --gpu NAME        RV670|RV770|RV870 or card number (default 4870)
//     --inputs N        number of input streams        (default 16)
//     --outputs N       number of output streams       (default 1)
//     --ratio R         SKA-normalised ALU:Fetch ratio (default 1.0)
//     --type T          float | float4                 (default float4)
//     --mode M          pixel | compute                (default pixel)
//     --block WxH       compute block shape            (default 64x1)
//     --domain WxH      launch domain                  (default 1024x1024)
//     --read P          texture | global               (default texture)
//     --write P         stream | global                (default stream)
//     --il-file PATH    load the kernel from IL text instead of
//                       generating it (see il::Parse)
//     --trace           print the execution trace summary + head
//     --show-il / --show-isa   print the program text
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "amdmb.hpp"

namespace {

using namespace amdmb;

[[noreturn]] void Usage(const std::string& msg) {
  std::cerr << "kernel_explorer: " << msg
            << "\nSee the header comment for options.\n";
  std::exit(2);
}

std::pair<unsigned, unsigned> ParsePair(const std::string& s) {
  const auto x = s.find('x');
  if (x == std::string::npos) Usage("expected WxH");
  return {static_cast<unsigned>(std::stoul(s.substr(0, x))),
          static_cast<unsigned>(std::stoul(s.substr(x + 1)))};
}

}  // namespace

int main(int argc, char** argv) {
  std::string gpu = "4870";
  suite::GenericSpec spec;
  spec.inputs = 16;
  spec.outputs = 1;
  spec.type = DataType::kFloat4;
  spec.name = "explorer";
  double ratio = 1.0;
  sim::LaunchConfig launch;
  bool show_il = false;
  bool show_isa = false;
  bool show_trace = false;
  std::string il_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--gpu") {
      gpu = next();
    } else if (arg == "--inputs") {
      spec.inputs = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--outputs") {
      spec.outputs = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--ratio") {
      ratio = std::stod(next());
    } else if (arg == "--type") {
      const std::string v = next();
      spec.type = v == "float" ? DataType::kFloat : DataType::kFloat4;
    } else if (arg == "--mode") {
      launch.mode =
          next() == "compute" ? ShaderMode::kCompute : ShaderMode::kPixel;
    } else if (arg == "--block") {
      const auto [x, y] = ParsePair(next());
      launch.block = BlockShape{x, y};
    } else if (arg == "--domain") {
      const auto [w, h] = ParsePair(next());
      launch.domain = Domain{w, h};
    } else if (arg == "--read") {
      spec.read_path =
          next() == "global" ? ReadPath::kGlobal : ReadPath::kTexture;
    } else if (arg == "--write") {
      spec.write_path =
          next() == "global" ? WritePath::kGlobal : WritePath::kStream;
    } else if (arg == "--il-file") {
      il_file = next();
    } else if (arg == "--trace") {
      show_trace = true;
    } else if (arg == "--show-il") {
      show_il = true;
    } else if (arg == "--show-isa") {
      show_isa = true;
    } else {
      Usage("unknown option " + arg);
    }
  }
  if (launch.mode == ShaderMode::kCompute) {
    spec.write_path = WritePath::kGlobal;  // No color buffers in compute.
  }
  spec.alu_ops = suite::AluOpsForRatio(ratio, spec.inputs);

  try {
    const cal::Device device = cal::Device::Open(gpu);
    cal::Context ctx(device);
    il::Kernel kernel;
    if (il_file.empty()) {
      kernel = suite::GenerateGeneric(spec);
    } else {
      std::ifstream in(il_file);
      if (!in.good()) Usage("cannot open " + il_file);
      std::ostringstream text;
      text << in.rdbuf();
      kernel = il::Parse(text.str());
    }
    const cal::Module module = ctx.Compile(kernel);

    if (show_il) std::cout << il::Print(kernel) << "\n";
    if (show_isa) std::cout << module.Disassemble() << "\n";
    std::cout << module.Ska().Render() << "\n";

    sim::Trace trace;
    const cal::RunEvent ev =
        ctx.Run(module, launch, show_trace ? &trace : nullptr);
    std::cout << ev.stats.Render() << "\n";
    if (show_trace) {
      std::cout << trace.RenderSummary() << "\n"
                << trace.RenderTimeline(20) << "\n";
    }

    suite::Measurement m;
    m.seconds = ev.seconds;
    m.stats = ev.stats;
    m.ska = module.Ska();
    std::cout << suite::Advise(m, launch.mode, launch.block).Render();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
