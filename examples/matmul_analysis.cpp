// Matrix-multiply analysis (paper Sec. IV-B).
//
// "The matrix multiplication samples in the StreamSDK are fetch bound,
// meaning not enough ALU operations are being done per fetch to hide all
// fetch latencies." This example builds a matmul inner-loop kernel in
// IL, confirms it is fetch-bound, then applies the paper's remedies one
// at a time and measures each:
//   * register blocking (more ALU work and outputs per fetch),
//   * a 2-D 4x16 compute block instead of the naive 64x1,
// and prints the resulting bound and speedup.
#include <iostream>

#include "amdmb.hpp"

namespace {

using namespace amdmb;

/// Inner loop of C = A * B over `k_steps` tiles: each step fetches one
/// element of A and one of B and issues one MAD per accumulator. With
/// `blocking` > 1, each thread computes `blocking` outputs and reuses
/// the fetched A element across them (classic register blocking): the
/// ALU-per-fetch ratio rises from k/(2k) to blocking*k/((1+blocking)*k).
il::Kernel MatmulKernel(unsigned k_steps, unsigned blocking) {
  il::Signature sig;
  sig.inputs = k_steps * (1 + blocking);
  sig.outputs = blocking;
  sig.type = DataType::kFloat4;
  sig.read_path = ReadPath::kTexture;
  sig.write_path = WritePath::kGlobal;
  il::Builder b("matmul_k" + std::to_string(k_steps) + "_b" +
                    std::to_string(blocking),
                sig);

  // Accumulators seeded from the first step's products.
  std::vector<unsigned> acc(blocking);
  unsigned next_input = 0;
  {
    const unsigned a = b.Fetch(next_input++);
    for (unsigned j = 0; j < blocking; ++j) {
      const unsigned bj = b.Fetch(next_input++);
      acc[j] = b.Mul(il::Operand::Reg(a), il::Operand::Reg(bj));
    }
  }
  for (unsigned k = 1; k < k_steps; ++k) {
    const unsigned a = b.Fetch(next_input++);
    for (unsigned j = 0; j < blocking; ++j) {
      const unsigned bj = b.Fetch(next_input++);
      acc[j] = b.Mad(il::Operand::Reg(a), il::Operand::Reg(bj),
                     il::Operand::Reg(acc[j]));
    }
  }
  for (unsigned j = 0; j < blocking; ++j) b.Write(j, acc[j]);
  return std::move(b).Build();
}

suite::Measurement Measure(cal::Context& ctx, const il::Kernel& kernel,
                           ShaderMode mode, BlockShape block) {
  const cal::Module module = ctx.Compile(kernel);
  sim::LaunchConfig launch;
  launch.domain = Domain{1024, 1024};
  launch.mode = mode;
  launch.block = block;
  const cal::RunEvent event = ctx.Run(module, launch);
  suite::Measurement m;
  m.seconds = event.seconds;
  m.stats = event.stats;
  m.ska = module.Ska();
  return m;
}

void Report(const char* label, const suite::Measurement& m,
            unsigned blocking, double baseline_per_output) {
  // With register blocking each thread produces `blocking` output
  // elements, so throughput comparisons normalise per output stream.
  const double per_output = m.seconds / blocking;
  std::cout << label << ": " << FormatDouble(m.seconds, 2)
            << " s total, " << FormatDouble(per_output, 2)
            << " s/output-stream, bound=" << sim::ToString(m.stats.bottleneck)
            << ", ALU:Fetch=" << FormatDouble(m.ska.alu_fetch_ratio, 2)
            << ", GPRs=" << m.ska.gpr_count << ", speedup="
            << FormatDouble(baseline_per_output / per_output, 2) << "x\n";
}

}  // namespace

int main() {
  using namespace amdmb;
  const cal::Device device = cal::Device::Open("4870");
  cal::Context ctx(device);
  std::cout << "Matrix-multiply boundedness analysis on "
            << device.Info().card << " (paper Sec. IV-B)\n\n";

  // Naive kernel: 8 k-steps, one output -> 8 MADs for 16 fetches
  // (SKA ratio 0.125): firmly fetch-bound, like the StreamSDK sample.
  const suite::Measurement naive = Measure(
      ctx, MatmulKernel(8, 1), ShaderMode::kCompute, BlockShape{64, 1});
  const double baseline = naive.seconds;
  Report("naive 64x1, blocking 1     ", naive, 1, baseline);
  std::cout << suite::Advise(naive, ShaderMode::kCompute, {64, 1}).Render()
            << "\n";

  // Remedy 1 (Sec. IV-B): raise ALU ops and outputs per fetch via
  // register blocking.
  const suite::Measurement blocked4 = Measure(
      ctx, MatmulKernel(8, 4), ShaderMode::kCompute, BlockShape{64, 1});
  Report("blocking 4 (more ALU/fetch)", blocked4, 4, baseline);

  // Remedy 2 (Sec. IV-A): a 2-D block raises the cache hit rate.
  const suite::Measurement shaped = Measure(
      ctx, MatmulKernel(8, 1), ShaderMode::kCompute, BlockShape{4, 16});
  Report("naive kernel, 4x16 block   ", shaped, 1, baseline);

  // Both remedies together.
  const suite::Measurement both = Measure(
      ctx, MatmulKernel(8, 4), ShaderMode::kCompute, BlockShape{4, 16});
  Report("blocking 4 + 4x16 block    ", both, 4, baseline);

  std::cout << "\nBoth of the paper's remedies help the fetch-bound kernel, and\n"
               "they compose: more ALU work and outputs per fetch (register\n"
               "blocking) plus a 2-D block shape for the 2-D texture cache.\n";
  return 0;
}
