// Quickstart: the full CAL-style workflow on one generated kernel.
//
//   1. Open a device (Radeon HD 4870 / RV770).
//   2. Generate a micro-benchmark kernel in IL (paper Fig. 3 pattern).
//   3. Compile it: IL -> clause-based VLIW ISA, with the SKA-style
//      static report (ALU:Fetch ratio, GPRs, occupancy).
//   4. Launch it over a 1024x1024 domain, timed over 5000 repetitions
//      like the paper.
//   5. Classify the bottleneck and print the paper's optimisation advice.
//
// Run:  ./example_quickstart [gpu-name] [alu-fetch-ratio]
#include <iostream>

#include "amdmb.hpp"

int main(int argc, char** argv) {
  using namespace amdmb;

  const std::string gpu_name = argc > 1 ? argv[1] : "4870";
  const double ratio = argc > 2 ? std::stod(argv[2]) : 1.0;

  const cal::Device device = cal::Device::Open(gpu_name);
  std::cout << "Device: " << device.Info().card << " (" << device.Info().name
            << "), " << device.Info().alu_count << " ALUs, "
            << device.Info().simd_engines << " SIMD engines\n\n";
  cal::Context ctx(device);

  // A 16-input kernel at the requested ALU:Fetch ratio (SKA-normalised:
  // ratio 1.0 means 4 ALU ops per fetch).
  suite::GenericSpec spec;
  spec.inputs = 16;
  spec.alu_ops = suite::AluOpsForRatio(ratio, spec.inputs);
  spec.type = DataType::kFloat4;
  spec.name = "quickstart";
  const il::Kernel kernel = suite::GenerateGeneric(spec);

  std::cout << "---- Generated IL (first lines) ----\n";
  const std::string il_text = il::Print(kernel);
  std::cout << il_text.substr(0, il_text.find("\n  add") + 60) << "  ...\n\n";

  const cal::Module module = ctx.Compile(kernel);
  std::cout << "---- SKA static analysis ----\n"
            << module.Ska().Render() << "\n";

  std::cout << "---- ISA disassembly (head) ----\n";
  const std::string disasm = module.Disassemble();
  std::cout << disasm.substr(0, 600) << "  ...\n\n";

  sim::LaunchConfig launch;
  launch.domain = Domain{1024, 1024};
  launch.mode = ShaderMode::kPixel;
  launch.repetitions = suite::kPaperRepetitions;
  const cal::RunEvent event = ctx.Run(module, launch);

  std::cout << "---- Dynamic measurement (5000 launches) ----\n"
            << event.stats.Render() << "\n";

  suite::Measurement m;
  m.seconds = event.seconds;
  m.stats = event.stats;
  m.ska = module.Ska();
  const suite::Advice advice = suite::Advise(m, launch.mode, launch.block);
  std::cout << "---- Optimisation advice (paper Sec. IV) ----\n"
            << advice.Render();
  return 0;
}
