// Binomial option pricing (paper Sec. IV-A).
//
// "The Binomial Option Pricing sample has several kernels that are ALU
// bound ... these ALU bound kernels can benefit from added fetches
// and/or outputs": this example builds an ALU-heavy lattice-step kernel
// (long dependent chains of MAD/transcendental work per option), shows
// it is ALU-bound, then demonstrates the paper's point by adding extra
// input streams — the runtime does not move until the added fetch work
// finally flips the bottleneck.
#include <iostream>

#include "amdmb.hpp"

namespace {

using namespace amdmb;

/// One backward-induction step over a `depth`-level binomial lattice:
/// fetch the option parameters, then a dependent chain of MADs
/// (discounted expectation per level) with a transcendental thrown in
/// per 16 levels (the exp() in the discount factor).
il::Kernel BinomialKernel(unsigned inputs, unsigned depth) {
  il::Signature sig;
  sig.inputs = inputs;
  sig.outputs = 1;
  sig.constants = 2;  // up/down probabilities.
  sig.type = DataType::kFloat;
  sig.read_path = ReadPath::kTexture;
  sig.write_path = WritePath::kStream;
  il::Builder b("binomial_d" + std::to_string(depth), sig);

  std::vector<unsigned> fetched;
  for (unsigned i = 0; i < inputs; ++i) fetched.push_back(b.Fetch(i));
  // Seed the lattice value from the fetched parameters.
  unsigned value = b.Add(il::Operand::Reg(fetched[0]),
                         il::Operand::Reg(fetched[1]));
  for (std::size_t i = 2; i < fetched.size(); ++i) {
    value = b.Add(il::Operand::Reg(value), il::Operand::Reg(fetched[i]));
  }
  for (unsigned level = 0; level < depth; ++level) {
    // v = p_up * v + v_prev (discounted expectation).
    value = b.Mad(il::Operand::Const(0), il::Operand::Reg(value),
                  il::Operand::Reg(value));
    if (level % 16 == 15) {
      value = b.Alu1(il::Opcode::kRcp, il::Operand::Reg(value));
    }
  }
  b.Write(0, value);
  return std::move(b).Build();
}

}  // namespace

int main() {
  using namespace amdmb;
  const cal::Device device = cal::Device::Open("4870");
  cal::Context ctx(device);
  suite::Runner runner(device.Info());
  std::cout << "Binomial option pricing boundedness (paper Sec. IV-A) on "
            << device.Info().card << "\n\n";

  sim::LaunchConfig launch;
  launch.domain = Domain{1024, 1024};

  const unsigned depth = 256;
  double baseline = 0.0;
  std::cout << "inputs  time(s)  bound   ALU:Fetch  (extra fetches vs "
               "baseline runtime)\n";
  for (const unsigned inputs : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const suite::Measurement m =
        runner.Measure(BinomialKernel(inputs, depth), launch);
    if (inputs == 2) baseline = m.seconds;
    std::cout << "  " << inputs << (inputs < 10 ? "     " : "    ")
              << FormatDouble(m.seconds, 2) << "    "
              << sim::ToString(m.stats.bottleneck) << "     "
              << FormatDouble(m.ska.alu_fetch_ratio, 2) << "      "
              << FormatDouble(100.0 * (m.seconds / baseline - 1.0), 1)
              << "% slower\n";
  }

  std::cout <<
      "\nReading: while the kernel stays ALU-bound, extra input fetches are\n"
      "essentially free — the fetch units were idle. Merging a low-intensity\n"
      "fetch-heavy kernel into this one (kernel merging, Sec. IV-A) uses\n"
      "the whole GPU. Only when the added fetches finally dominate does\n"
      "the bound flip and the runtime climb.\n";
  return 0;
}
