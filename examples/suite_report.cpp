// Runs the condensed end-to-end micro-benchmark suite and prints the
// report: Table I, ALU:Fetch crossovers, read/write latency slopes, and
// the register-pressure effect, each annotated with the paper's claim.
//
// Run:  ./example_suite_report [--quick] [gpu-name]
#include <cstring>
#include <iostream>

#include "amdmb.hpp"

int main(int argc, char** argv) {
  amdmb::suite::SuiteOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else {
      options.arch_filter = argv[i];
    }
  }
  try {
    std::cout << amdmb::suite::RunFullSuiteReport(options);
  } catch (const amdmb::ConfigError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
