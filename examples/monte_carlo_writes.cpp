// Monte Carlo write boundedness (paper Sec. IV-C).
//
// "The StreamSDK Monte Carlo sample includes several kernels which are
// global write bound. This indicates that ... there is room for
// additional ALU instructions (with no performance decrease) until the
// point at which the bound changes from write to ALU." This example
// builds a path-simulation kernel that writes several float4 result
// streams to global memory, confirms it is write-bound, then sweeps the
// per-thread ALU work to locate exactly where the free-ALU headroom
// ends.
#include <iostream>

#include "amdmb.hpp"

int main() {
  using namespace amdmb;
  const cal::Device device = cal::Device::Open("4870");
  suite::Runner runner(device.Info());
  std::cout << "Monte Carlo write-bound analysis (paper Sec. IV-C) on "
            << device.Info().card << "\n\n";

  sim::LaunchConfig launch;
  launch.domain = Domain{1024, 1024};

  // Path-simulation shape: two parameter inputs, six float4 result
  // streams (price, variance, greeks, ...) written to global memory.
  double write_bound_time = 0.0;
  double headroom_ops = 0.0;
  std::cout << "alu_ops  time(s)  bound\n";
  for (const unsigned alu_ops : {16u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    suite::GenericSpec spec;
    spec.inputs = 2;
    spec.outputs = 6;
    spec.alu_ops = alu_ops;
    spec.type = DataType::kFloat4;
    spec.read_path = ReadPath::kTexture;
    spec.write_path = WritePath::kGlobal;
    spec.name = "montecarlo_a" + std::to_string(alu_ops);
    const suite::Measurement m =
        runner.Measure(suite::GenerateGeneric(spec), launch);
    if (alu_ops == 16) write_bound_time = m.seconds;
    if (m.stats.bottleneck == sim::Bottleneck::kMemory) {
      headroom_ops = alu_ops;
    }
    std::cout << "  " << alu_ops << (alu_ops < 100 ? "     " : "    ")
              << FormatDouble(m.seconds, 2) << "    "
              << sim::ToString(m.stats.bottleneck) << "\n";
  }

  std::cout << "\nWrite-bound floor: " << FormatDouble(write_bound_time, 2)
            << " s. The kernel absorbs up to ~" << headroom_ops
            << " ALU ops per thread before the bound leaves MEMORY —\n"
               "that much extra computation (better estimators, more paths\n"
               "per thread) is free on this GPU.\n";
  return 0;
}
